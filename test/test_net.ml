(* Tests for the network medium and the Communication Manager: datagram
   semantics, session at-most-once ordered delivery under loss,
   permanent-failure detection, restart incarnations, broadcast, and
   spanning-tree recording. *)

open Tabs_sim
open Tabs_wal
open Tabs_net

let quick name f = Alcotest.test_case name `Quick f

type Network.payload += Msg of int

let setup ?(nodes = 3) ?(seed = 5) () =
  let engine = Engine.create () in
  let net = Network.create engine ~seed in
  let cms = List.init nodes (fun node -> Comm_mgr.create net ~node ()) in
  (engine, net, cms)

let cm cms i = List.nth cms i

let test_datagram_delivery () =
  let engine, _, cms = setup () in
  let got = ref [] in
  Comm_mgr.add_datagram_handler (cm cms 1) (fun ~src payload ->
      match payload with Msg v -> got := (src, v) :: !got | _ -> ());
  let _ =
    Engine.spawn engine ~node:0 (fun () ->
        Comm_mgr.send_datagram (cm cms 0) ~dest:1 (Msg 42))
  in
  let _ = Engine.run engine in
  Alcotest.(check (list (pair int int))) "delivered with source" [ (0, 42) ] !got

let test_datagram_costs () =
  let engine, _, cms = setup () in
  let _ =
    Engine.spawn engine ~node:0 (fun () ->
        Comm_mgr.send_datagrams_parallel (cm cms 0) ~dests:[ 1; 2 ] (Msg 1))
  in
  let _ = Engine.run engine in
  (* 1 full + 1 half datagram = 1.5 weight, 37.5 ms *)
  Alcotest.(check int) "elapsed 37.5ms" 37_500 (Engine.now engine);
  Alcotest.(check bool) "weight 1.5" true
    (abs_float (Metrics.weight (Engine.metrics engine) Cost_model.Datagram -. 1.5)
    < 0.001)

let test_datagram_unreliable () =
  let engine, net, cms = setup () in
  Network.set_loss net 1.0;
  let got = ref 0 in
  Comm_mgr.add_datagram_handler (cm cms 1) (fun ~src:_ _ -> incr got);
  let _ =
    Engine.spawn engine ~node:0 (fun () ->
        Comm_mgr.send_datagram (cm cms 0) ~dest:1 (Msg 1))
  in
  let _ = Engine.run engine in
  Alcotest.(check int) "dropped silently" 0 !got;
  Alcotest.(check bool) "drop counted" true (Network.dropped net > 0);
  Alcotest.(check int) "attributed to the loss roll" (Network.dropped net)
    (Network.drops net).Network.loss

let test_session_ordered () =
  let _engine, net, cms = setup () in
  let engine = Network.engine net in
  let got = ref [] in
  Comm_mgr.set_session_handler (cm cms 1) (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  for v = 1 to 10 do
    Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg v)
  done;
  let _ = Engine.run engine in
  Alcotest.(check (list int)) "in order" (List.init 10 (fun i -> i + 1))
    (List.rev !got)

let test_session_survives_loss () =
  (* with 40% loss, retransmission still delivers everything exactly
     once, in order *)
  let engine, net, cms = setup ~seed:77 () in
  Network.set_loss net 0.4;
  let got = ref [] in
  Comm_mgr.set_session_handler (cm cms 1) (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  for v = 1 to 20 do
    Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg v)
  done;
  let _ = Engine.run engine in
  Alcotest.(check (list int)) "at-most-once, ordered, complete"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got)

let prop_session_under_any_loss =
  QCheck.Test.make ~name:"sessions deliver exactly once under any loss rate"
    ~count:25
    QCheck.(pair (int_range 0 35) small_int)
    (fun (loss_pct, seed) ->
      let engine, net, cms = setup ~nodes:2 ~seed:(seed + 1) () in
      Network.set_loss net (float_of_int loss_pct /. 100.);
      let got = ref [] in
      Comm_mgr.set_session_handler (cm cms 1) (fun ~src:_ payload ->
          match payload with Msg v -> got := v :: !got | _ -> ());
      for v = 1 to 12 do
        Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg v)
      done;
      let _ = Engine.run engine in
      List.rev !got = List.init 12 (fun i -> i + 1))

let test_session_failure_detection () =
  let engine, net, cms = setup () in
  let failed_peer = ref None in
  Comm_mgr.set_failure_handler (cm cms 0) (fun ~peer -> failed_peer := Some peer);
  Network.set_node_up net ~node:1 false;
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 1);
  let _ = Engine.run engine in
  Alcotest.(check (option int)) "dead peer reported" (Some 1) !failed_peer

let test_session_incarnation_reset () =
  (* after failure detection, traffic to the (restarted) peer uses a
     fresh stream starting at sequence 0 *)
  let engine, net, cms = setup () in
  let got = ref [] in
  Network.set_node_up net ~node:1 false;
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 1);
  let _ = Engine.run engine in
  (* peer comes back as a fresh incarnation *)
  Network.set_node_up net ~node:1 true;
  let cm1' = Comm_mgr.create net ~node:1 () in
  Comm_mgr.set_session_handler cm1' (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 2);
  let _ = Engine.run engine in
  Alcotest.(check (list int)) "post-restart message delivered" [ 2 ] !got

let test_session_reset_renumbers_unacked () =
  (* the peer restarts mid-stream: messages it never acknowledged are
     renumbered into a fresh stream and still delivered exactly once *)
  let engine, net, cms = setup () in
  let got = ref [] in
  Comm_mgr.set_session_handler (cm cms 1) (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  (* deliver two messages normally *)
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 1);
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 2);
  let _ = Engine.run engine in
  (* peer goes down; two more messages are sent into the void *)
  Network.set_node_up net ~node:1 false;
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 3);
  Comm_mgr.session_send (cm cms 0) ~dest:1 (Msg 4);
  Engine.run_until engine ~time:(Engine.now engine + 150_000);
  (* peer restarts with a fresh Communication Manager before the sender
     declares it dead; the reset handshake renumbers 3 and 4 *)
  Network.set_node_up net ~node:1 true;
  let cm1' = Comm_mgr.create net ~node:1 () in
  Comm_mgr.set_session_handler cm1' (fun ~src:_ payload ->
      match payload with Msg v -> got := v :: !got | _ -> ());
  let _ = Engine.run engine in
  Alcotest.(check (list int))
    "all messages delivered exactly once, in order"
    [ 1; 2; 3; 4 ] (List.rev !got)

let test_broadcast () =
  let engine, _, cms = setup () in
  let got = ref [] in
  List.iteri
    (fun i c ->
      if i > 0 then
        Comm_mgr.set_broadcast_handler c (fun ~src payload ->
            match payload with Msg v -> got := (i, src, v) :: !got | _ -> ()))
    cms;
  let _ =
    Engine.spawn engine ~node:0 (fun () -> Comm_mgr.broadcast (cm cms 0) (Msg 9))
  in
  let _ = Engine.run engine in
  Alcotest.(check (list (triple int int int)))
    "all other nodes heard it"
    [ (1, 0, 9); (2, 0, 9) ]
    (List.sort compare !got)

let test_partition () =
  let engine, net, cms = setup () in
  let got = ref 0 in
  Comm_mgr.add_datagram_handler (cm cms 1) (fun ~src:_ _ -> incr got);
  Network.set_partitioned net 0 1 true;
  let _ =
    Engine.spawn engine ~node:0 (fun () ->
        Comm_mgr.send_datagram (cm cms 0) ~dest:1 (Msg 1))
  in
  let _ = Engine.run engine in
  Alcotest.(check int) "blocked" 0 !got;
  Network.set_partitioned net 0 1 false;
  let _ =
    Engine.spawn engine ~node:0 (fun () ->
        Comm_mgr.send_datagram (cm cms 0) ~dest:1 (Msg 1))
  in
  let _ = Engine.run engine in
  Alcotest.(check int) "healed" 1 !got

(* Drop-cause accounting --------------------------------------------------- *)

let test_drop_causes () =
  let engine, net, cms = setup () in
  Comm_mgr.add_datagram_handler (cm cms 1) (fun ~src:_ _ -> ());
  let send () =
    let _ =
      Engine.spawn engine ~node:0 (fun () ->
          Comm_mgr.send_datagram (cm cms 0) ~dest:1 (Msg 1))
    in
    ignore (Engine.run engine)
  in
  Network.set_loss net 1.0;
  send ();
  Network.set_loss net 0.0;
  Network.set_partitioned net 0 1 true;
  send ();
  Network.set_partitioned net 0 1 false;
  Network.set_node_up net ~node:1 false;
  send ();
  Network.set_node_up net ~node:1 true;
  (* a node that never registered accepts the transmission but has no
     handler on the channel *)
  Network.transmit net ~src:0 ~dest:7 ~channel:Network.Datagram ~delay:10
    (Msg 1);
  ignore (Engine.run engine);
  let d = Network.drops net in
  Alcotest.(check int) "loss roll" 1 d.Network.loss;
  Alcotest.(check int) "partition" 1 d.Network.partition;
  Alcotest.(check int) "down endpoint" 1 d.Network.down;
  Alcotest.(check int) "no handler" 1 d.Network.no_handler;
  Alcotest.(check int) "total is the sum of causes"
    (d.Network.loss + d.Network.partition + d.Network.down
   + d.Network.no_handler)
    (Network.dropped net)

(* Session retransmission backoff ------------------------------------------ *)

let test_session_backoff_schedule () =
  (* With the peer down, retransmissions back off exponentially:
     base rto, 2x, 4x, ... and the stream is declared failed after
     [session_retries] barren rounds. *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:1 in
  let cm0 =
    Comm_mgr.create net ~node:0 ~session_rto:100_000 ~session_retries:3 ()
  in
  let _cm1 = Comm_mgr.create net ~node:1 () in
  let retransmits = ref [] and failed_at = ref None in
  Engine.set_tracer engine
    (Some
       (fun ~time ev ->
         match ev with
         | Comm_mgr.Session_retransmit { attempt; rto; _ } ->
             retransmits := (time, attempt, rto) :: !retransmits
         | Comm_mgr.Session_failure { peer; _ } ->
             failed_at := Some (time, peer)
         | _ -> ()));
  Network.set_node_up net ~node:1 false;
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  let _ = Engine.run engine in
  Alcotest.(check (list (triple int int int)))
    "doubling retransmission schedule"
    [ (100_000, 1, 100_000); (300_000, 2, 200_000); (700_000, 3, 400_000) ]
    (List.rev !retransmits);
  Alcotest.(check (option (pair int int)))
    "declared failed one capped rto after the last round"
    (Some (1_500_000, 1))
    !failed_at

let test_session_backoff_reset_on_ack () =
  (* Two barren rounds double the rto; once the (restarted) peer answers
     and the stream makes progress, the backoff resets, so the next
     barren round waits only the base rto again. *)
  let engine = Engine.create () in
  let net = Network.create engine ~seed:3 in
  let cm0 = Comm_mgr.create net ~node:0 ~session_rto:100_000 () in
  let _cm1 = Comm_mgr.create net ~node:1 () in
  let rtos = ref [] in
  Engine.set_tracer engine
    (Some
       (fun ~time:_ ev ->
         match ev with
         | Comm_mgr.Session_retransmit { rto; _ } -> rtos := rto :: !rtos
         | _ -> ()));
  Network.set_node_up net ~node:1 false;
  Comm_mgr.session_send cm0 ~dest:1 (Msg 1);
  (* rounds at 100k and 300k fire barren; rto is now 400k *)
  Engine.run_until engine ~time:350_000;
  Network.set_node_up net ~node:1 true;
  let cm1' = Comm_mgr.create net ~node:1 () in
  Comm_mgr.set_session_handler cm1' (fun ~src:_ _ -> ());
  (* the 700k round reaches the fresh incarnation; the reset handshake
     renumbers, delivers, and the progressing ack resets the backoff *)
  let _ = Engine.run engine in
  Network.set_node_up net ~node:1 false;
  let t0 = Engine.now engine in
  Comm_mgr.session_send cm0 ~dest:1 (Msg 2);
  Engine.run_until engine ~time:(t0 + 150_000);
  Alcotest.(check (list int)) "doubles, then resets to the base rto"
    [ 100_000; 200_000; 400_000; 100_000 ]
    (List.rev !rtos)

(* Spanning tree ---------------------------------------------------------- *)

let test_spanning_tree () =
  let engine, _, cms = setup () in
  let tid = Tid.top ~node:0 ~seq:1 in
  let spread = ref [] in
  List.iteri
    (fun i c ->
      Comm_mgr.set_remote_involvement_handler c (fun t ->
          spread := (i, Tid.to_string t) :: !spread))
    cms;
  Comm_mgr.note_local_root (cm cms 0) tid;
  (* 0 sends to 1; 1 sends onward to 2; replies flow back *)
  Comm_mgr.session_send (cm cms 0) ~dest:1 ~tid (Msg 1);
  let _ = Engine.run engine in
  Comm_mgr.session_send (cm cms 1) ~dest:2 ~tid (Msg 2);
  let _ = Engine.run engine in
  (* replies: child to parent must not create edges *)
  Comm_mgr.session_send (cm cms 2) ~dest:1 ~tid (Msg 3);
  Comm_mgr.session_send (cm cms 1) ~dest:0 ~tid (Msg 4);
  let _ = Engine.run engine in
  Alcotest.(check (option int)) "root has no parent" None
    (Comm_mgr.parent_of (cm cms 0) tid);
  Alcotest.(check (list int)) "root's children" [ 1 ]
    (Comm_mgr.children_of (cm cms 0) tid);
  Alcotest.(check (option int)) "1's parent is 0" (Some 0)
    (Comm_mgr.parent_of (cm cms 1) tid);
  Alcotest.(check (list int)) "1's children" [ 2 ]
    (Comm_mgr.children_of (cm cms 1) tid);
  Alcotest.(check (option int)) "2's parent is 1" (Some 1)
    (Comm_mgr.parent_of (cm cms 2) tid);
  Alcotest.(check (list int)) "2 is a leaf" [] (Comm_mgr.children_of (cm cms 2) tid);
  (* each node reported remote involvement exactly once *)
  Alcotest.(check int) "three involvement notices" 3 (List.length !spread)

let test_tree_forgotten () =
  let engine, _, cms = setup () in
  let tid = Tid.top ~node:0 ~seq:2 in
  Comm_mgr.note_local_root (cm cms 0) tid;
  Comm_mgr.session_send (cm cms 0) ~dest:1 ~tid (Msg 1);
  let _ = Engine.run engine in
  Alcotest.(check bool) "involved" true
    (Comm_mgr.involved_remotely (cm cms 0) tid);
  Comm_mgr.forget_txn (cm cms 0) tid;
  Alcotest.(check bool) "forgotten" false
    (Comm_mgr.involved_remotely (cm cms 0) tid)

let suites =
  [
    ( "net.datagram",
      [
        quick "delivery" test_datagram_delivery;
        quick "parallel costs" test_datagram_costs;
        quick "unreliable" test_datagram_unreliable;
        quick "partition" test_partition;
        quick "drop causes" test_drop_causes;
      ] );
    ( "net.session",
      [
        quick "ordered" test_session_ordered;
        quick "survives loss" test_session_survives_loss;
        quick "failure detection" test_session_failure_detection;
        quick "incarnation reset" test_session_incarnation_reset;
        quick "reset renumbers unacked" test_session_reset_renumbers_unacked;
        quick "backoff schedule" test_session_backoff_schedule;
        quick "backoff resets on ack" test_session_backoff_reset_on_ack;
        QCheck_alcotest.to_alcotest prop_session_under_any_loss;
      ] );
    ("net.broadcast", [ quick "fan out" test_broadcast ]);
    ( "net.tree",
      [
        quick "spanning tree" test_spanning_tree;
        quick "forgotten" test_tree_forgotten;
      ] );
  ]
