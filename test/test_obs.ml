(* Tests for the observability library: the recorder sink, histogram
   percentiles, span derivation from a synthetic event stream, JSONL
   export shape, and the zero-cost-when-disabled invariant. *)

open Tabs_sim
open Tabs_wal
open Tabs_obs

let quick name f = Alcotest.test_case name `Quick f

let tid n = Tid.top ~node:0 ~seq:n

(* Histograms ------------------------------------------------------------- *)

let test_hist_percentiles () =
  let h = Hist.of_list (List.init 100 (fun i -> i + 1)) in
  Alcotest.(check int) "p50 of 1..100" 50 (Hist.p50 h);
  Alcotest.(check int) "p95 of 1..100" 95 (Hist.p95 h);
  Alcotest.(check int) "p99 of 1..100" 99 (Hist.p99 h);
  Alcotest.(check int) "p100 is max" 100 (Hist.percentile h 100.);
  Alcotest.(check int) "max" 100 (Hist.max_value h);
  Alcotest.(check int) "count" 100 (Hist.count h)

let test_hist_degenerate () =
  let empty = Hist.create () in
  Alcotest.(check int) "empty p99" 0 (Hist.p99 empty);
  let single = Hist.of_list [ 7 ] in
  Alcotest.(check int) "singleton p50" 7 (Hist.p50 single);
  Alcotest.(check int) "singleton p99" 7 (Hist.p99 single);
  let unsorted = Hist.of_list [ 30; 10; 20 ] in
  Alcotest.(check int) "sorts before ranking" 20 (Hist.p50 unsorted)

(* Spans ------------------------------------------------------------------- *)

(* Drive a real engine and emit transaction events at controlled virtual
   times; span derivation must reconstruct latency and outcome. *)
let record_script script =
  let e = Engine.create () in
  let r = Recorder.attach e in
  ignore
    (Engine.spawn e (fun () ->
         List.iter
           (fun (at, ev) ->
             let now = Engine.now e in
             if at > now then Engine.delay (at - now);
             Engine.emit e ev)
           script));
  let _ = Engine.run e in
  let entries = Recorder.entries r in
  Recorder.detach r;
  entries

let test_span_commit_and_abort () =
  let open Tabs_tm in
  let entries =
    record_script
      [
        (0, Txn_mgr.Txn_begin { node = 0; tid = tid 1 });
        (100, Txn_mgr.Txn_begin { node = 0; tid = tid 2 });
        (1_000, Txn_mgr.Txn_commit { node = 0; tid = tid 1; distributed = false });
        (* a subordinate echo of some other node's verdict must not
           close node 0's span *)
        (1_500, Txn_mgr.Txn_commit { node = 1; tid = tid 2; distributed = true });
        ( 2_100,
          Txn_mgr.Txn_abort
            { node = 0; tid = tid 2; reason = Trace.Lock_timeout } );
      ]
  in
  let spans = Span.of_entries entries in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  Alcotest.(check bool) "balanced" true (Span.balanced spans);
  Alcotest.(check (list int)) "commit latency" [ 1_000 ]
    (Span.commit_latencies spans);
  (match Span.abort_breakdown spans with
  | [ (Trace.Lock_timeout, 1) ] -> ()
  | _ -> Alcotest.fail "expected one lock_timeout abort");
  let s2 = List.find (fun (s : Span.t) -> Tid.equal s.tid (tid 2)) spans in
  Alcotest.(check (option int)) "aborted span duration" (Some 2_000)
    (Span.duration s2)

let test_span_unresolved () =
  let open Tabs_tm in
  let entries =
    record_script [ (0, Txn_mgr.Txn_begin { node = 0; tid = tid 1 }) ]
  in
  let spans = Span.of_entries entries in
  Alcotest.(check int) "one span" 1 (List.length spans);
  Alcotest.(check bool) "unbalanced" false (Span.balanced spans)

let test_span_folds_lock_waits () =
  let open Tabs_tm in
  let open Tabs_lock in
  let o = Object_id.make ~segment:1 ~offset:0 ~length:8 in
  (* the lock wait happens under a child subtransaction; it must fold
     into the top-level span *)
  let sub = Tid.child (tid 1) ~index:0 in
  let entries =
    record_script
      [
        (0, Txn_mgr.Txn_begin { node = 0; tid = tid 1 });
        (10, Lock_manager.Lock_wait { tid = sub; obj = o; mode = Mode.Write });
        ( 250,
          Lock_manager.Lock_granted
            { tid = sub; obj = o; mode = Mode.Write; waited = 240 } );
        (900, Txn_mgr.Txn_commit { node = 0; tid = tid 1; distributed = false });
      ]
  in
  match Span.of_entries entries with
  | [ s ] ->
      Alcotest.(check int) "lock wait folded" 240 s.Span.lock_wait;
      Alcotest.(check int) "one granted wait" 1 s.Span.lock_waits;
      Alcotest.(check int) "no timeouts" 0 s.Span.lock_timeouts
  | _ -> Alcotest.fail "expected a single span"

(* JSONL ------------------------------------------------------------------- *)

let test_jsonl_shape () =
  let open Tabs_tm in
  let entries =
    record_script
      [
        (42, Txn_mgr.Txn_begin { node = 0; tid = tid 1 });
        (50, Trace.Note "quoted \"text\"\nsecond line");
      ]
  in
  match List.map Jsonl.entry_to_json entries with
  | [ l1; l2 ] ->
      Alcotest.(check string)
        "begin line" {|{"t":42,"type":"txn_begin","node":0,"tid":"T0.1"}|} l1;
      Alcotest.(check string)
        "escaped note"
        {|{"t":50,"type":"note","text":"quoted \"text\"\nsecond line"}|} l2
  | _ -> Alcotest.fail "expected two lines"

let test_jsonl_unknown_event () =
  let module M = struct
    type Trace.event += Private_event
  end in
  let info = Event_info.inspect M.Private_event in
  Alcotest.(check string) "unknown fallback" "unknown" info.Event_info.name

(* Zero cost when disabled ------------------------------------------------- *)

let test_recorder_detach_stops_recording () =
  let e = Engine.create () in
  let r = Recorder.attach e in
  Alcotest.(check bool) "tracing on" true (Engine.tracing e);
  Engine.emit e (Trace.Note "one");
  Recorder.detach r;
  Alcotest.(check bool) "tracing off" false (Engine.tracing e);
  Engine.emit e (Trace.Note "two");
  Alcotest.(check int) "only the first was kept" 1 (Recorder.length r)

let suites =
  [
    ( "obs.hist",
      [
        quick "percentiles" test_hist_percentiles;
        quick "degenerate" test_hist_degenerate;
      ] );
    ( "obs.span",
      [
        quick "commit and abort" test_span_commit_and_abort;
        quick "unresolved" test_span_unresolved;
        quick "folds lock waits" test_span_folds_lock_waits;
      ] );
    ( "obs.jsonl",
      [
        quick "shape and escaping" test_jsonl_shape;
        quick "unknown event" test_jsonl_unknown_event;
      ] );
    ( "obs.recorder",
      [ quick "detach stops recording" test_recorder_detach_stops_recording ] );
  ]
