(* Dependency logging and graph-bounded parallel redo.

   The load-bearing properties:

   - with the feature off, no dependency record is ever written and
     nothing changes (the seed probes elsewhere pin byte-identity);
   - a dependency record is emitted only on a cross-family conflict,
     immediately after the update it orders, and truncation can never
     separate the pair;
   - parallel replay with one fiber is the serial schedule record for
     record; with more fibers it is faster but ends in the same state;
   - crash at an arbitrary instant: a parallel anchored restart and a
     serial full-scan recovery over a frozen copy of the same stable
     log and disk agree on losers, the in-doubt set, and every data
     byte — including with group commit, checkpointing, and comm
     batching all running at once. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery
open Tabs_core
open Tabs_servers

let quick name f = Alcotest.test_case name `Quick f

(* --- rig (no Transaction Manager), as in test_checkpoint ------------- *)

type rig = {
  engine : Engine.t;
  disk : Disk.t;
  stable : Stable.t;
  vm : Vm.t;
  log : Log_manager.t;
  rm : Recovery_mgr.t;
}

let pages = 16

let cells_per_page = Page.size / 8

let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8

(* one operation-logged counter per cell; redo and undo both write the
   absolute value carried in the record's argument *)
let register_counter rm vm =
  let apply ~op:_ ~arg =
    Scanf.sscanf arg "%d %d" (fun cell v ->
        Vm.pin vm (obj cell) ~access:`Random;
        Vm.write vm (obj cell) (Printf.sprintf "%08d" v);
        Vm.unpin vm (obj cell))
  in
  Recovery_mgr.register_op_handler rm ~server:"counter"
    { redo = apply; undo = apply }

let make_rig ?parallel_recovery () =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk 1 ~pages;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames:(2 * pages) () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm ?parallel_recovery ()
  in
  register_counter rm vm;
  { engine; disk; stable; vm; log; rm }

let run_fiber rig f =
  let out = ref None in
  let _ = Engine.spawn rig.engine (fun () -> out := Some (f ())) in
  let _ = Engine.run rig.engine in
  Option.get !out

let write_value rig tid n value =
  Vm.pin rig.vm (obj n) ~access:`Random;
  let old_value = Vm.read rig.vm (obj n) ~access:`Random in
  Vm.write rig.vm (obj n) value;
  ignore
    (Recovery_mgr.log_value rig.rm ~tid ~obj:(obj n) ~old_value
       ~new_value:value);
  Vm.unpin rig.vm (obj n)

let write_op rig tid n v ~reads =
  Vm.pin rig.vm (obj n) ~access:`Random;
  Vm.write rig.vm (obj n) (Printf.sprintf "%08d" v);
  Vm.unpin rig.vm (obj n);
  ignore
    (Recovery_mgr.log_operation rig.rm ~tid ~server:"counter" ~op:"set"
       ~undo_arg:(Printf.sprintf "%d %d" n 0)
       ~redo_arg:(Printf.sprintf "%d %d" n v)
       ~reads:(List.map obj reads) ~objs:[ obj n ] ())

let commit rig tid =
  let lsn = Recovery_mgr.append_tm_record rig.rm (Record.Txn_commit tid) in
  Recovery_mgr.force_through rig.rm lsn

let v8 s = Printf.sprintf "%-8s" s

let dependency_records rig =
  run_fiber rig (fun () -> Log_manager.force_all rig.log);
  let deps = ref [] in
  Log_manager.iter_forward rig.log ~from:(Log_manager.first_lsn rig.log)
    ~f:(fun lsn record ->
      match record with
      | Record.Dependency d -> deps := (lsn, d) :: !deps
      | _ -> ());
  List.rev !deps

(* --- dependency emission -------------------------------------------- *)

let test_off_emits_nothing () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 and t2 = Tid.top ~node:0 ~seq:2 in
      write_value rig t1 0 (v8 "a");
      commit rig t1;
      write_value rig t2 0 (v8 "b");
      commit rig t2);
  Alcotest.(check bool) "dep logging off" false
    (Log_manager.dep_logging rig.log);
  Alcotest.(check int) "no dependency records" 0
    (List.length (dependency_records rig));
  Alcotest.(check int) "counter agrees" 0 (Log_manager.deps_emitted rig.log)

let test_conflict_emits_adjacent_record () =
  let rig = make_rig ~parallel_recovery:Parallel_redo.default () in
  Alcotest.(check bool) "dep logging on" true
    (Log_manager.dep_logging rig.log);
  let lsn1 = ref 0 in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 and t2 = Tid.top ~node:0 ~seq:2 in
      Vm.pin rig.vm (obj 0) ~access:`Random;
      Vm.write rig.vm (obj 0) (v8 "a");
      Vm.unpin rig.vm (obj 0);
      lsn1 :=
        Recovery_mgr.log_value rig.rm ~tid:t1 ~obj:(obj 0)
          ~old_value:(v8 "") ~new_value:(v8 "a");
      commit rig t1;
      (* the same family rewriting the object: no conflict, no record *)
      write_value rig t1 0 (v8 "a2");
      (* another family: conflict *)
      write_value rig t2 0 (v8 "b");
      commit rig t2);
  match dependency_records rig with
  | [ (dep_lsn, d) ] ->
      Alcotest.(check int) "adjacent to its update" (d.Record.update_lsn + 1)
        dep_lsn;
      Alcotest.(check int) "one predecessor" 1 (List.length d.Record.preds);
      (* the predecessor is t1's *latest* write of the object, not the
         first: the last-writer table tracks the newest image *)
      Alcotest.(check int) "predecessor is the last writer" (!lsn1 + 2)
        (snd (List.hd d.Record.preds))
  | deps ->
      Alcotest.failf "expected exactly one dependency, got %d"
        (List.length deps)

let test_read_conflict_crosses_pages () =
  let rig = make_rig ~parallel_recovery:Parallel_redo.default () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 and t2 = Tid.top ~node:0 ~seq:2 in
      (* t1 writes a cell on page 0; t2 writes a cell on page 1 having
         read t1's cell — a cross-page read-write conflict *)
      write_op rig t1 0 7 ~reads:[];
      commit rig t1;
      write_op rig t2 cells_per_page 8 ~reads:[ 0 ];
      commit rig t2);
  match dependency_records rig with
  | [ (_, d) ] ->
      let pred_obj, _ = List.hd d.Record.preds in
      Alcotest.(check bool) "predecessor is the read object" true
        (Object_id.equal pred_obj (obj 0));
      Alcotest.(check bool) "and lives on another page" true
        (Object_id.pages pred_obj <> Object_id.pages (obj cells_per_page))
  | deps ->
      Alcotest.failf "expected exactly one dependency, got %d"
        (List.length deps)

let test_truncation_never_splits_the_pair () =
  let rig = make_rig ~parallel_recovery:Parallel_redo.default () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 and t2 = Tid.top ~node:0 ~seq:2 in
      write_value rig t1 0 (v8 "a");
      commit rig t1;
      write_value rig t2 0 (v8 "b");
      commit rig t2;
      Log_manager.force_all rig.log;
      Vm.flush_all rig.vm);
  let dep_lsn, d =
    match dependency_records rig with
    | [ pair ] -> pair
    | deps ->
        Alcotest.failf "expected exactly one dependency, got %d"
          (List.length deps)
  in
  (* a prospective truncation point between the update and its
     dependency record is lowered onto the update *)
  Alcotest.(check int) "aligned onto the update" d.Record.update_lsn
    (Log_manager.dep_aligned_keep_from rig.log ~keep_from:dep_lsn);
  Log_manager.truncate rig.log ~keep_from:dep_lsn;
  Alcotest.(check int) "truncate applies the alignment" d.Record.update_lsn
    (Log_manager.first_lsn rig.log)

(* --- lockstep and speedup ------------------------------------------- *)

(* A mixed workload: operation-logged counters with cross-page read
   conflicts, value-logged cells, and losers. Pages are never flushed,
   so everything needs redo at recovery. *)
let build_mixed_log () =
  let rig = make_rig ~parallel_recovery:Parallel_redo.default () in
  run_fiber rig (fun () ->
      for i = 0 to 39 do
        let tid = Tid.top ~node:0 ~seq:(i + 1) in
        if i mod 2 = 0 then begin
          (* ops: a hot counter on page (i mod 4), then a cold cell
             beyond, reading an earlier family's hot counter — a
             cross-page dependency edge *)
          write_op rig tid ((i mod 4) * cells_per_page) (i + 1) ~reads:[];
          write_op rig tid
            ((4 + (i mod (pages - 4))) * cells_per_page)
            (i + 100)
            ~reads:[ ((i + 2) mod 4) * cells_per_page ]
        end
        else begin
          write_value rig tid (4 + (i mod 8)) (v8 (string_of_int i));
          write_value rig tid (12 + (i mod 4)) (v8 (string_of_int (i * 3)))
        end;
        if i mod 7 <> 6 then commit rig tid
      done;
      Log_manager.force_all rig.log);
  rig

let recover_frozen rig ~parallel ~hook =
  let engine = Engine.create () in
  let disk = Disk.copy rig.disk ~engine in
  let stable = Stable.copy rig.stable in
  let vm = Vm.attach engine disk ~frames:(2 * pages) () in
  let log = Log_manager.attach engine stable in
  let rm =
    Recovery_mgr.create engine ~node:0 ~log ~vm ?parallel_recovery:parallel ()
  in
  register_counter rm vm;
  Recovery_mgr.set_apply_hook rm hook;
  let out = ref None in
  ignore
    (Engine.spawn engine (fun () ->
         out := Some (Recovery_mgr.recover ~anchored:false rm)));
  ignore (Engine.run engine);
  (Option.get !out, disk)

let check_pages_equal ~what disk_a disk_b ~segments =
  List.iter
    (fun segment ->
      let seg_pages = Disk.segment_pages disk_a segment in
      for p = 0 to seg_pages - 1 do
        let pid = { Disk.segment; page = p } in
        if
          not
            (Page.equal
               (Disk.read_nocharge disk_a pid)
               (Disk.read_nocharge disk_b pid))
        then Alcotest.failf "segment %d page %d differs: %s" segment p what
      done)
    segments

let test_one_fiber_is_serial_record_for_record () =
  let rig = build_mixed_log () in
  let trace parallel =
    let acc = ref [] in
    let outcome, disk =
      recover_frozen rig ~parallel
        ~hook:(Some (fun ~phase ~lsn -> acc := (phase, lsn) :: !acc))
    in
    (List.rev !acc, outcome, disk)
  in
  let serial_trace, serial_outcome, serial_disk = trace None in
  let n1_trace, n1_outcome, n1_disk =
    trace (Some { Parallel_redo.fibers = 1 })
  in
  Alcotest.(check bool) "some work was replayed" true
    (List.length serial_trace > 40);
  Alcotest.(check (list (pair string int)))
    "identical application sequence" serial_trace n1_trace;
  Alcotest.(check int) "identical replay time" serial_outcome.replay_us
    n1_outcome.replay_us;
  Alcotest.(check (list string))
    "identical losers"
    (List.map Tid.to_string serial_outcome.losers)
    (List.map Tid.to_string n1_outcome.losers);
  check_pages_equal ~what:"serial vs one fiber" serial_disk n1_disk
    ~segments:[ 1 ]

let test_more_fibers_same_state_less_time () =
  let rig = build_mixed_log () in
  let serial_outcome, serial_disk =
    recover_frozen rig ~parallel:None ~hook:None
  in
  let par_outcome, par_disk =
    recover_frozen rig ~parallel:(Some { Parallel_redo.fibers = 8 })
      ~hook:None
  in
  Alcotest.(check bool) "replay is faster with 8 fibers" true
    (par_outcome.replay_us < serial_outcome.replay_us);
  (match par_outcome.graph with
  | None -> Alcotest.fail "parallel recovery must report its graph"
  | Some s ->
      Alcotest.(check bool) "graph has cross-page dependency edges" true
        (s.Parallel_redo.dep_edges > 0);
      Alcotest.(check bool) "critical path below total work" true
        (s.Parallel_redo.critical_path
        < s.Parallel_redo.op_records + s.Parallel_redo.value_records));
  Alcotest.(check (list string))
    "identical losers"
    (List.map Tid.to_string serial_outcome.losers)
    (List.map Tid.to_string par_outcome.losers);
  check_pages_equal ~what:"serial vs eight fibers" serial_disk par_disk
    ~segments:[ 1 ]

(* --- crash at a random instant over full nodes ----------------------- *)

let next_rand s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

(* The account server's "adjust" records carry absolute balances;
   replaying one on a bare Recovery Manager needs only this handler
   (mirrors the redo/undo Account_server registers). *)
let register_accounts rm vm ~name ~segment =
  let slot_obj i = Object_id.make ~segment ~offset:(8 * i) ~length:8 in
  let encode_slot v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Bytes.to_string b
  in
  let apply ~op ~arg =
    if op <> "adjust" then failwith ("unexpected account op " ^ op);
    let r = Codec.Reader.of_string arg in
    let entries =
      Codec.Reader.list r (fun r ->
          let i = Codec.Reader.int r in
          let v = Codec.Reader.int r in
          (i, v))
    in
    List.iter
      (fun (i, v) ->
        Vm.pin vm (slot_obj i) ~access:`Random;
        Vm.write vm (slot_obj i) (encode_slot v);
        Vm.unpin vm (slot_obj i))
      entries
  in
  Recovery_mgr.register_op_handler rm ~server:name
    { redo = apply; undo = apply }

(* Random concurrent workload on one node with parallel recovery (and,
   when [full_stack], group commit, the checkpoint daemon, and comm
   batching all at once) — crash at a random instant; the live node's
   parallel anchored restart must agree with a serial full-scan
   recovery over a frozen copy on losers, in-doubt set, and every data
   byte. Value-logged and operation-logged servers both participate. *)
let parallel_crash_equivalence ~profile ~full_stack ?(window = 2_000_000) ~seed
    () =
  let cells = 128 and accounts = 64 in
  let c =
    Cluster.create ~nodes:1 ~profile
      ~parallel_recovery:{ Parallel_redo.fibers = 4 }
      ?group_commit:(if full_stack then Some Group_commit.default else None)
      ?checkpointing:
        (if full_stack then
           Some { Checkpointer.interval = 20_000; trickle = 4 }
         else None)
      ?comm_batching:
        (if full_stack then Some Tabs_net.Comm_mgr.default_batching
         else None)
      ()
  in
  let node = Cluster.node c 0 in
  let arr =
    Int_array_server.create (Node.env node) ~name:"a" ~segment:1 ~cells ()
  in
  let acc =
    Account_server.create (Node.env node) ~name:"b" ~segment:2 ~accounts ()
  in
  let tm = Node.tm node in
  for w = 0 to 2 do
    Cluster.spawn c ~node:0 (fun () ->
        let s = ref (seed + (w * 7919) + 1) in
        let rand n =
          s := next_rand !s;
          !s mod n
        in
        while true do
          (try
             Txn_lib.execute_transaction tm (fun tid ->
                 for _ = 0 to rand 3 do
                   if rand 2 = 0 then
                     Int_array_server.set arr tid (rand cells) (rand 1000)
                   else
                     Account_server.deposit acc tid (rand accounts)
                       (1 + rand 9)
                 done)
           with
          | Errors.Transaction_is_aborted _ | Errors.Deadlock _
          | Errors.Lock_timeout _ ->
              ());
          Engine.delay (1 + rand 2_000)
        done)
  done;
  let crash_at = 60_000 + (next_rand seed mod window) in
  Cluster.run_until c ~time:crash_at;
  Node.crash node;
  (* freeze the stable log and disk as they were at the crash *)
  let ref_engine = Engine.create () in
  let stable_copy = Stable.copy (Log_manager.stable (Node.log node)) in
  let disk_copy = Disk.copy (Node.disk node) ~engine:ref_engine in
  (* reference: serial full-scan recovery over the frozen copy *)
  let ref_outcome =
    let vm = Vm.attach ref_engine disk_copy ~frames:64 () in
    let log = Log_manager.attach ref_engine stable_copy in
    let rm = Recovery_mgr.create ref_engine ~node:0 ~log ~vm () in
    register_accounts rm vm ~name:"b" ~segment:2;
    let out = ref None in
    ignore
      (Engine.spawn ref_engine (fun () ->
           out := Some (Recovery_mgr.recover ~anchored:false rm)));
    ignore (Engine.run ref_engine);
    Option.get !out
  in
  (* live node: parallel anchored restart *)
  let outcome =
    Cluster.run_fiber c ~node:0 (fun () ->
        Node.restart node
          ~reinstall:(fun env ->
            ignore
              (Int_array_server.create env ~name:"a" ~segment:1 ~cells ());
            ignore
              (Account_server.create env ~name:"b" ~segment:2 ~accounts ()))
          ())
  in
  (* the live restart must actually have replayed through the graph,
     and the reference serially *)
  Alcotest.(check bool) "live restart was parallel" true
    (outcome.graph <> None);
  Alcotest.(check bool) "reference was serial" true (ref_outcome.graph = None);
  let tids = List.map Tid.to_string in
  Alcotest.(check (list string))
    "parallel and serial recovery agree on losers" (tids ref_outcome.losers)
    (tids outcome.losers);
  Alcotest.(check (list string))
    "and on the in-doubt set"
    (List.map (fun (t, _) -> Tid.to_string t) ref_outcome.in_doubt)
    (List.map (fun (t, _) -> Tid.to_string t) outcome.in_doubt);
  check_pages_equal ~what:"parallel restart vs serial reference"
    (Node.disk node) disk_copy ~segments:[ 1; 2 ];
  true

let prop_parallel_equivalence profile name =
  QCheck.Test.make ~name ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      parallel_crash_equivalence ~profile ~full_stack:false ~seed ())

(* the 300-seed stress: the whole stack on at once *)
let test_full_stack_stress () =
  for seed = 1 to 300 do
    ignore
      (parallel_crash_equivalence ~profile:Profile.Classic ~full_stack:true
         ~window:1_500_000 ~seed:(seed * 3571) ())
  done

let suites =
  [
    ( "parallel_recovery",
      [
        quick "off: no dependency records" test_off_emits_nothing;
        quick "conflict emits adjacent dependency"
          test_conflict_emits_adjacent_record;
        quick "read conflict crosses pages" test_read_conflict_crosses_pages;
        quick "truncation never splits the pair"
          test_truncation_never_splits_the_pair;
        quick "one fiber = serial, record for record"
          test_one_fiber_is_serial_record_for_record;
        quick "more fibers: same state, less time"
          test_more_fibers_same_state_less_time;
        QCheck_alcotest.to_alcotest
          (prop_parallel_equivalence Profile.Classic
             "crash at a random instant: parallel = serial (Classic)");
        QCheck_alcotest.to_alcotest
          (prop_parallel_equivalence Profile.Integrated
             "crash at a random instant: parallel = serial (Integrated)");
        Alcotest.test_case "300-seed stress: full stack on" `Slow
          test_full_stack_stress;
      ] );
  ]
