(* Paxos Commit: healthy-path equivalence with 2PC, non-blocking
   in-doubt resolution by acceptor takeover, and the two resolution
   bugfix regressions (abandonment accounting; the restart
   status-query window). *)

open Tabs_sim
open Tabs_net
open Tabs_core
open Tabs_servers
open Tabs_obs

let paxos = Tabs_tm.Commit_protocol.Paxos { f = 1 }

let server_name dest = Printf.sprintf "a%d" dest

(* A cluster where every node hosts one int-array server. *)
let make_cluster ?commit_protocol ?(nodes = 4) ?(seed = 7) () =
  let c = Cluster.create ~nodes ~seed ?commit_protocol () in
  let arrays =
    List.map
      (fun node ->
        Int_array_server.create (Node.env node)
          ~name:(server_name (Node.id node))
          ~segment:1 ~cells:16 ())
      (Cluster.nodes c)
  in
  (c, arrays)

let write_everywhere _tm rpc ~nodes tid v =
  for dest = 0 to nodes - 1 do
    Int_array_server.call_set rpc ~dest ~server:(server_name dest) tid 0 v
  done

let read_cell c arrays ~node =
  Cluster.run_fiber c ~node (fun () ->
      Txn_lib.execute_transaction
        (Node.tm (Cluster.node c node))
        (fun tid -> Int_array_server.get (List.nth arrays node) tid 0))

let no_leaked_locks arrays =
  List.for_all
    (fun arr ->
      Tabs_lock.Lock_manager.total_holds
        (Server_lib.lock_manager (Int_array_server.server arr))
      = 0)
    arrays

let drained c =
  List.for_all
    (fun node -> Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
    (Cluster.nodes c)

(* Healthy cluster: a Paxos-committed transaction is durable and visible
   on every node, nothing is left in doubt, no locks leak. The
   coordinator (node 3) is deliberately not an acceptor. *)
let test_paxos_commit_healthy () =
  let c, arrays = make_cluster ~commit_protocol:paxos () in
  let n3 = Cluster.node c 3 in
  let tm = Node.tm n3 and rpc = Node.rpc n3 in
  let outcome =
    Cluster.run_fiber c ~node:3 (fun () ->
        let tid = Txn_lib.begin_transaction tm () in
        write_everywhere tm rpc ~nodes:4 tid 42;
        Txn_lib.end_transaction tm tid)
  in
  Alcotest.(check bool) "committed" true outcome;
  Cluster.run c;
  for node = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "node %d sees the write" node)
      42
      (read_cell c arrays ~node)
  done;
  Alcotest.(check bool) "nothing in doubt" true (drained c);
  Alcotest.(check bool) "no leaked locks" true (no_leaked_locks arrays)

(* A healthy abort (vote timeout is not involved; a participant is
   unreachable from the start so its vote phase fails) must release
   everything under Paxos too. *)
let test_paxos_abort_releases () =
  let c, arrays = make_cluster ~commit_protocol:paxos () in
  let n3 = Cluster.node c 3 in
  let tm = Node.tm n3 and rpc = Node.rpc n3 in
  Cluster.spawn c ~node:3 (fun () ->
      try
        ignore
          (Txn_lib.execute_transaction tm (fun tid ->
               write_everywhere tm rpc ~nodes:4 tid 9;
               (* now make node 1 silent for the vote phase *)
               Node.crash (Cluster.node c 1)))
      with _ -> ());
  Cluster.run_until c ~time:120_000_000;
  Alcotest.(check bool) "nothing in doubt on survivors" true
    (List.for_all
       (fun node ->
         (not (Node.is_up node))
         || Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
       (Cluster.nodes c));
  (* survivors' cells still read 0 *)
  Alcotest.(check int) "node 0 unchanged" 0 (read_cell c arrays ~node:0);
  Alcotest.(check int) "node 2 unchanged" 0 (read_cell c arrays ~node:2)

(* The tentpole property: the coordinator crashes while its participants
   are prepared — under 2PC they would block until it returns; under
   Paxos Commit the acceptors take over and release them with NO
   restart of the coordinator, ever. *)
let test_takeover_releases_in_doubt () =
  let c, arrays = make_cluster ~commit_protocol:paxos () in
  let n3 = Cluster.node c 3 in
  let tm = Node.tm n3 and rpc = Node.rpc n3 in
  Cluster.spawn c ~node:3 (fun () ->
      try
        ignore
          (Txn_lib.execute_transaction tm (fun tid ->
               write_everywhere tm rpc ~nodes:4 tid 7))
      with _ -> ());
  (* kill the coordinator the moment a participant is prepared *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 500;
           if Tabs_tm.Txn_mgr.in_doubt (Node.tm (Cluster.node c 1)) <> [] then
             Node.crash n3
           else watch ()
         in
         watch ()));
  let recorder = Recorder.attach (Cluster.engine c) in
  Cluster.run_until c ~time:120_000_000;
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  (* released without the coordinator coming back *)
  Alcotest.(check bool) "coordinator still down" false (Node.is_up n3);
  Alcotest.(check bool) "survivors drained" true
    (List.for_all
       (fun node ->
         (not (Node.is_up node))
         || Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
       (Cluster.nodes c));
  let survivor_arrays = [ List.nth arrays 0; List.nth arrays 1; List.nth arrays 2 ] in
  Alcotest.(check bool) "locks released on survivors" true
    (no_leaked_locks survivor_arrays);
  (* a takeover ballot really ran and decided *)
  let takeovers, decisions =
    List.fold_left
      (fun (t, d) ({ event; _ } : Recorder.entry) ->
        match event with
        | Tabs_tm.Paxos.Paxos_takeover _ -> (t + 1, d)
        | Tabs_tm.Paxos.Paxos_decided _ -> (t, d + 1)
        | _ -> (t, d))
      (0, 0) entries
  in
  Alcotest.(check bool) "takeover ballots ran" true (takeovers >= 1);
  Alcotest.(check bool) "decision reached" true (decisions >= 1);
  (* every survivor records the same outcome, and the replicated value
     agrees with it *)
  let outcomes =
    List.filter_map
      (fun node ->
        if Node.is_up node then
          List.find_map
            (fun ({ event; _ } : Recorder.entry) ->
              match event with
              | Tabs_tm.Txn_mgr.Txn_commit { node = n; _ }
                when n = Node.id node -> Some true
              | Tabs_tm.Txn_mgr.Txn_abort { node = n; _ }
                when n = Node.id node -> Some false
              | _ -> None)
            entries
        else None)
      (Cluster.nodes c)
  in
  let consistent =
    match outcomes with
    | [] -> true
    | o :: rest -> List.for_all (fun o' -> o' = o) rest
  in
  Alcotest.(check bool) "survivor outcomes consistent" true consistent;
  let expected = match outcomes with true :: _ -> 7 | _ -> 0 in
  List.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "node %d value matches outcome" node)
        expected
        (read_cell c arrays ~node))
    [ 0; 1; 2 ]

(* Progress with F failures: the coordinator AND one acceptor die, the
   remaining quorum of two (F+1) still resolves. *)
let test_takeover_with_f_acceptor_failures () =
  let c, arrays = make_cluster ~commit_protocol:paxos () in
  let n3 = Cluster.node c 3 in
  let tm = Node.tm n3 and rpc = Node.rpc n3 in
  Cluster.spawn c ~node:3 (fun () ->
      try
        ignore
          (Txn_lib.execute_transaction tm (fun tid ->
               write_everywhere tm rpc ~nodes:4 tid 11))
      with _ -> ());
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 500;
           if Tabs_tm.Txn_mgr.in_doubt (Node.tm (Cluster.node c 0)) <> [] then begin
             Node.crash n3;
             Node.crash (Cluster.node c 1)
           end
           else watch ()
         in
         watch ()));
  Cluster.run_until c ~time:120_000_000;
  Alcotest.(check bool) "remaining nodes drained" true
    (List.for_all
       (fun node ->
         (not (Node.is_up node))
         || Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
       (Cluster.nodes c));
  Alcotest.(check bool) "locks released on remaining nodes" true
    (no_leaked_locks [ List.nth arrays 0; List.nth arrays 2 ])

(* S1 regression: under 2PC with the coordinator gone for good, the
   resolver exhausts its status-query budget. That surrender used to be
   silent; it must now be observable in the trace stream, the
   engine-wide counter, and the per-TM count — with the transaction
   still in doubt and its locks still held (the blocking window is the
   point, not a thing to paper over). *)
let test_resolution_abandoned_is_observable () =
  let c, arrays = make_cluster ~commit_protocol:Tabs_tm.Commit_protocol.Two_phase ~nodes:2 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      try
        ignore
          (Txn_lib.execute_transaction tm (fun tid ->
               write_everywhere tm rpc ~nodes:2 tid 3))
      with _ -> ());
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 500;
           if Tabs_tm.Txn_mgr.in_doubt (Node.tm (Cluster.node c 1)) <> [] then
             Node.crash n0
           else watch ()
         in
         watch ()));
  let recorder = Recorder.attach (Cluster.engine c) in
  (* 100 attempts, 3 s apart, plus slack *)
  Cluster.run_until c ~time:400_000_000;
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  let abandoned =
    List.exists
      (fun ({ event; _ } : Recorder.entry) ->
        match event with
        | Tabs_tm.Txn_mgr.Resolution_abandoned { node = 1; _ } -> true
        | _ -> false)
      entries
  in
  Alcotest.(check bool) "Resolution_abandoned emitted" true abandoned;
  Alcotest.(check bool) "engine-wide counter bumped" true
    ((Metrics.tm (Engine.metrics (Cluster.engine c))).Metrics.resolutions_abandoned
    >= 1);
  Alcotest.(check bool) "per-TM count surfaced" true
    (Tabs_tm.Txn_mgr.resolutions_abandoned (Node.tm (Cluster.node c 1)) >= 1);
  (* the bug being *reported*, not silently fixed: still blocked *)
  Alcotest.(check int) "still in doubt" 1
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm (Cluster.node c 1))));
  Alcotest.(check bool) "locks still held" false
    (no_leaked_locks [ List.nth arrays 1 ])

(* S2 regression: a coordinator that committed, crashed, and is
   restarting must not answer status queries from the middle of its log
   replay — "no record (yet)" is not "no transaction", and the old path
   would have answered presumed-abort and split a committed outcome.
   Hammer the restart window with queries to make the race certain. *)
let test_restart_window_status_query () =
  let c, arrays = make_cluster ~commit_protocol:Tabs_tm.Commit_protocol.Two_phase ~nodes:2 () in
  let n0 = Cluster.node c 0 and n1 = Cluster.node c 1 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let the_tid = ref None in
  Cluster.spawn c ~node:0 (fun () ->
      try
        ignore
          (Txn_lib.execute_transaction tm (fun tid ->
               the_tid := Some tid;
               write_everywhere tm rpc ~nodes:2 tid 8))
      with _ -> ());
  (* kill the coordinator the instant its commit record is down, before
     phase two reaches node 1: node 1 stays prepared in doubt *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let rec watch () =
           Engine.delay 100;
           match !the_tid with
           | Some tid
             when Tabs_tm.Txn_mgr.outcome_of (Node.tm n0) tid
                  = Some Tabs_tm.Txn_mgr.Committed ->
               Node.crash n0
           | _ -> watch ()
         in
         watch ()));
  Cluster.run_until c ~time:5_000_000;
  Alcotest.(check bool) "coordinator crashed post-decision" false
    (Node.is_up n0);
  Alcotest.(check int) "participant in doubt" 1
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm n1)));
  let tid = Option.get !the_tid in
  (* flood the restart window: a query every 200 us from node 1 while
     node 0 rebuilds and replays *)
  ignore
    (Engine.spawn (Cluster.engine c) ~node:1 (fun () ->
         for _ = 1 to 200 do
           Engine.delay 200;
           Comm_mgr.send_datagram (Node.cm n1) ~dest:0
             (Tabs_tm.Txn_mgr.Tm_status_query tid)
         done));
  let holder = ref None in
  ignore
    (Cluster.run_fiber c ~node:0 (fun () ->
         Node.restart n0
           ~reinstall:(fun env ->
             holder :=
               Some
                 (Int_array_server.create env ~name:"a0" ~segment:1 ~cells:16 ()))
           ()));
  Cluster.run_until c ~time:(Engine.now (Cluster.engine c) + 60_000_000);
  (* the participant resolved to Committed — never to presumed abort *)
  Alcotest.(check bool) "participant learned Committed" true
    (Tabs_tm.Txn_mgr.outcome_of (Node.tm n1) tid
    = Some Tabs_tm.Txn_mgr.Committed);
  Alcotest.(check int) "drained" 0
    (List.length (Tabs_tm.Txn_mgr.in_doubt (Node.tm n1)));
  Alcotest.(check int) "committed value visible on node 1" 8
    (read_cell c arrays ~node:1)

(* With the protocol off nothing of Paxos exists on the wire or in the
   log: the 9-node healthy run above under Two_phase must emit zero
   Paxos trace events (the availability bench asserts the throughput
   side of this). *)
let test_two_phase_emits_no_paxos_events () =
  let c, _ = make_cluster ~commit_protocol:Tabs_tm.Commit_protocol.Two_phase () in
  let n3 = Cluster.node c 3 in
  let tm = Node.tm n3 and rpc = Node.rpc n3 in
  let recorder = Recorder.attach (Cluster.engine c) in
  ignore
    (Cluster.run_fiber c ~node:3 (fun () ->
         Txn_lib.execute_transaction tm (fun tid ->
             write_everywhere tm rpc ~nodes:4 tid 5)));
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  Alcotest.(check bool) "no paxos events under 2PC" true
    (List.for_all
       (fun ({ event; _ } : Recorder.entry) ->
         match event with
         | Tabs_tm.Paxos.Paxos_vote_cast _ | Tabs_tm.Paxos.Paxos_accepted _
         | Tabs_tm.Paxos.Paxos_takeover _ | Tabs_tm.Paxos.Paxos_decided _ ->
             false
         | _ -> true)
       entries)

let suites =
  [
    ( "tm.paxos",
      [
        Alcotest.test_case "paxos commit healthy" `Quick
          test_paxos_commit_healthy;
        Alcotest.test_case "paxos abort releases" `Quick
          test_paxos_abort_releases;
        Alcotest.test_case "takeover releases in-doubt without restart" `Quick
          test_takeover_releases_in_doubt;
        Alcotest.test_case "progress with F acceptor failures" `Quick
          test_takeover_with_f_acceptor_failures;
        Alcotest.test_case "abandoned resolution is observable" `Quick
          test_resolution_abandoned_is_observable;
        Alcotest.test_case "restart window answers no status query" `Quick
          test_restart_window_status_query;
        Alcotest.test_case "2PC emits no paxos events" `Quick
          test_two_phase_emits_no_paxos_events;
      ] );
  ]
