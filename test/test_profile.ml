(* The Section 5.3 Integrated architecture must change only where time
   goes, never what happens: a property test drives identical randomized
   schedules — local and distributed transactions, commits, aborts, and
   a mid-transaction crash with restart — through a Classic and an
   Integrated cluster and demands identical verdicts and identical
   committed data; an alcotest case pins down the cost side, that an
   Integrated node charges strictly fewer message primitives and
   accounts for the difference as elisions. *)

open Tabs_sim
open Tabs_core
open Tabs_servers

let cells = 8

(* One scripted transaction: which cell, whether it also touches the
   remote node, and whether the application commits or aborts it. *)
type step = { cell : int; distributed : bool; commit : bool }

let apply_script profile script =
  let c = Cluster.create ~nodes:2 ~profile () in
  let reinstall env =
    ignore
      (Int_array_server.create env
         ~name:(Printf.sprintf "a%d" env.Server_lib.node)
         ~segment:1 ~cells ())
  in
  List.iter (fun node -> reinstall (Node.env node)) (Cluster.nodes c);
  let outcomes = ref [] in
  let value = ref 0 in
  let run_steps steps =
    let n0 = Cluster.node c 0 in
    let tm = Node.tm n0 and rpc = Node.rpc n0 in
    Cluster.run_fiber c ~node:0 (fun () ->
        List.iter
          (fun { cell; distributed; commit } ->
            incr value;
            let v = !value in
            let tid = Txn_lib.begin_transaction tm () in
            Int_array_server.call_set rpc ~dest:0 ~server:"a0" tid cell v;
            if distributed then
              Int_array_server.call_set rpc ~dest:1 ~server:"a1" tid cell v;
            if commit then
              outcomes := Txn_lib.end_transaction tm tid :: !outcomes
            else begin
              Txn_lib.abort_transaction tm tid;
              outcomes := false :: !outcomes
            end)
          steps)
  in
  let half = List.length script / 2 in
  run_steps (List.filteri (fun i _ -> i < half) script);
  (* a transaction left open across a crash: its local updates must be
     undone by recovery, identically in both profiles *)
  let n0 = Cluster.node c 0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      let tm = Node.tm n0 and rpc = Node.rpc n0 in
      let tid = Txn_lib.begin_transaction tm () in
      Int_array_server.call_set rpc ~dest:0 ~server:"a0" tid 0 999);
  Node.crash n0;
  ignore (Cluster.run_fiber c ~node:0 (fun () -> Node.restart n0 ~reinstall ()));
  run_steps (List.filteri (fun i _ -> i >= half) script);
  (* read back every cell of both nodes *)
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let state =
    Cluster.run_fiber c ~node:0 (fun () ->
        let out = ref [] in
        Txn_lib.execute_transaction tm (fun tid ->
            for cell = cells - 1 downto 0 do
              let v0 =
                Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid cell
              in
              let v1 =
                Int_array_server.call_get rpc ~dest:1 ~server:"a1" tid cell
              in
              out := (v0, v1) :: !out
            done);
        !out)
  in
  (List.rev !outcomes, state)

let step_gen =
  QCheck.Gen.(
    map3
      (fun cell distributed commit -> { cell; distributed; commit })
      (int_bound (cells - 1)) bool bool)

let arbitrary_script =
  QCheck.make
    ~print:(fun s ->
      String.concat ";"
        (List.map
           (fun { cell; distributed; commit } ->
             Printf.sprintf "(%d,%b,%b)" cell distributed commit)
           s))
    QCheck.Gen.(list_size (int_range 2 12) step_gen)

let prop_profiles_equivalent =
  QCheck.Test.make
    ~name:"Classic and Integrated reach identical outcomes and state"
    ~count:12 arbitrary_script
    (fun script ->
      apply_script Profile.Classic script
      = apply_script Profile.Integrated script)

(* The cost side: one local transaction that reads and writes a cell.
   Integrated must charge strictly fewer message primitives (TM->RM log
   appends become procedure calls) and book the difference as elided. *)
let message_weights profile =
  let c = Cluster.create ~nodes:1 ~profile () in
  let n0 = Cluster.node c 0 in
  ignore (Int_array_server.create (Node.env n0) ~name:"a0" ~segment:1 ~cells ());
  let engine = Cluster.engine c in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      let before = Metrics.snapshot (Engine.metrics engine) in
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.call_get rpc ~dest:0 ~server:"a0" tid 0);
          Int_array_server.call_set rpc ~dest:0 ~server:"a0" tid 0 1);
      let d =
        Metrics.diff ~later:(Metrics.snapshot (Engine.metrics engine)) ~earlier:before
      in
      let charged =
        Metrics.weight d Cost_model.Small_contiguous_message
        +. Metrics.weight d Cost_model.Large_contiguous_message
        +. Metrics.weight d Cost_model.Datagram
      in
      (charged, Metrics.elided_weight d Cost_model.Small_contiguous_message))

let test_integrated_charges_fewer_messages () =
  let classic_charged, classic_elided = message_weights Profile.Classic in
  let integrated_charged, integrated_elided =
    message_weights Profile.Integrated
  in
  Alcotest.(check bool)
    "Integrated charges strictly fewer message primitives" true
    (integrated_charged < classic_charged);
  Alcotest.(check (float 0.001)) "Classic elides nothing" 0. classic_elided;
  Alcotest.(check bool) "Integrated books the elided hops" true
    (integrated_elided > 0.);
  Alcotest.(check (float 0.001))
    "charged + elided on Integrated equals Classic's charges"
    classic_charged
    (integrated_charged +. integrated_elided)

let suites =
  [
    ( "profile",
      [
        QCheck_alcotest.to_alcotest prop_profiles_equivalent;
        Alcotest.test_case "Integrated charges fewer, elides the rest" `Quick
          test_integrated_charges_fewer_messages;
      ] );
  ]
