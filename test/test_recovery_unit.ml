(* Unit tests of the Recovery Manager's algorithms, driven directly at
   the Recovery_mgr level (no data servers): the single backward pass of
   value recovery across tricky interleavings, the status analysis, the
   prepared/in-doubt handling, and a model-based property over random
   commit/abort/crash schedules. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal
open Tabs_accent
open Tabs_recovery

let quick name f = Alcotest.test_case name `Quick f

type rig = {
  engine : Engine.t;
  disk : Disk.t;
  stable : Stable.t;
  mutable vm : Vm.t;
  mutable log : Log_manager.t;
  mutable rm : Recovery_mgr.t;
}

let make_rig () =
  let engine = Engine.create () in
  let disk = Disk.create engine in
  Disk.ensure_segment disk 1 ~pages:8;
  let stable = Stable.create () in
  let vm = Vm.attach engine disk ~frames:16 () in
  let log = Log_manager.attach engine stable in
  let rm = Recovery_mgr.create engine ~node:0 ~log ~vm () in
  { engine; disk; stable; vm; log; rm }

(* simulate a crash: rebuild all volatile structures *)
let crash_and_recover rig =
  let vm = Vm.attach rig.engine rig.disk ~frames:16 () in
  let log = Log_manager.attach rig.engine rig.stable in
  let rm = Recovery_mgr.create rig.engine ~node:0 ~log ~vm () in
  rig.vm <- vm;
  rig.log <- log;
  rig.rm <- rm;
  Recovery_mgr.recover rm

let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8

let run_fiber rig f =
  let out = ref None in
  let _ = Engine.spawn rig.engine (fun () -> out := Some (f ())) in
  let _ = Engine.run rig.engine in
  Option.get !out

(* forward-processing helpers *)
let write rig tid n value =
  Vm.pin rig.vm (obj n) ~access:`Random;
  let old_value = Vm.read rig.vm (obj n) ~access:`Random in
  Vm.write rig.vm (obj n) value;
  ignore (Recovery_mgr.log_value rig.rm ~tid ~obj:(obj n) ~old_value ~new_value:value);
  Vm.unpin rig.vm (obj n)

let commit rig tid =
  let lsn = Recovery_mgr.append_tm_record rig.rm (Record.Txn_commit tid) in
  Recovery_mgr.force_through rig.rm lsn

let read_disk rig n =
  let (pid : Disk.page_id) = List.hd (Object_id.pages (obj n)) in
  let page = Disk.read_nocharge rig.disk pid in
  Page.sub page ~off:(8 * n mod Page.size) ~len:8

let v8 s = Printf.sprintf "%-8s" s

let test_committed_redone () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let tid = Tid.top ~node:0 ~seq:1 in
      write rig tid 0 (v8 "new");
      commit rig tid);
  (* page never flushed: disk holds zeroes; recovery must install the
     committed value *)
  let outcome = run_fiber rig (fun () -> crash_and_recover rig) in
  Alcotest.(check int) "no losers" 0 (List.length outcome.losers);
  Alcotest.(check string) "redone to disk" (v8 "new") (read_disk rig 0)

let test_uncommitted_undone_from_disk () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 in
      write rig t1 0 (v8 "keep");
      commit rig t1;
      let t2 = Tid.top ~node:0 ~seq:2 in
      write rig t2 0 (v8 "dirty");
      (* WAL: force the log, then let the dirty page reach disk *)
      Log_manager.force_all rig.log;
      Vm.flush_all rig.vm);
  let outcome = run_fiber rig (fun () -> crash_and_recover rig) in
  Alcotest.(check int) "one loser" 1 (List.length outcome.losers);
  Alcotest.(check string) "old value restored" (v8 "keep") (read_disk rig 0)

let test_multiple_updates_same_txn () =
  (* a loser that updated the same object twice must roll back to the
     oldest old-value, even if undo half-finished before the crash *)
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 in
      write rig t1 0 (v8 "first");
      commit rig t1;
      let t2 = Tid.top ~node:0 ~seq:2 in
      write rig t2 0 (v8 "second");
      write rig t2 0 (v8 "third");
      Log_manager.force_all rig.log;
      Vm.flush_all rig.vm);
  ignore (run_fiber rig (fun () -> crash_and_recover rig));
  Alcotest.(check string) "back to the committed image" (v8 "first")
    (read_disk rig 0)

let test_abort_then_overwrite_then_crash () =
  (* T2 aborts (undone in place, locks released); T3 then commits a new
     value. The backward pass must finalize T3's value and ignore T2's
     stale record. *)
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:1 in
      write rig t1 0 (v8 "base");
      commit rig t1;
      let t2 = Tid.top ~node:0 ~seq:2 in
      write rig t2 0 (v8 "undone");
      Recovery_mgr.abort rig.rm ~tid:t2;
      let t3 = Tid.top ~node:0 ~seq:3 in
      write rig t3 0 (v8 "final");
      commit rig t3);
  ignore (run_fiber rig (fun () -> crash_and_recover rig));
  Alcotest.(check string) "latest committed wins" (v8 "final") (read_disk rig 0)

let test_prepared_applied_and_in_doubt () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let tid = Tid.top ~node:0 ~seq:4 in
      write rig tid 0 (v8 "maybe");
      let lsn = Recovery_mgr.append_tm_record rig.rm (Record.Txn_prepare (tid, 2)) in
      Recovery_mgr.force_through rig.rm lsn);
  let outcome = run_fiber rig (fun () -> crash_and_recover rig) in
  (* prepared data is applied ("reflect only the operations of committed
     and prepared transactions") but reported in doubt *)
  Alcotest.(check int) "in doubt" 1 (List.length outcome.in_doubt);
  (match outcome.in_doubt with
  | [ (_, coordinator) ] -> Alcotest.(check int) "coordinator" 2 coordinator
  | _ -> Alcotest.fail "expected one in-doubt txn");
  Alcotest.(check string) "applied" (v8 "maybe") (read_disk rig 0);
  Alcotest.(check int) "its objects need relocking" 1
    (List.length outcome.written_objects);
  (* the coordinator later says Abort: the chain is still walkable *)
  run_fiber rig (fun () ->
      match outcome.in_doubt with
      | [ (tid, _) ] -> Recovery_mgr.abort rig.rm ~tid
      | _ -> ());
  run_fiber rig (fun () -> Vm.flush_all rig.vm);
  Alcotest.(check string) "post-verdict undo" (String.make 8 '\000')
    (read_disk rig 0)

let test_subtxn_abort_record_respected () =
  (* a subtransaction abort record makes its updates losers even though
     the top-level transaction commits *)
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let top = Tid.top ~node:0 ~seq:5 in
      let sub = Tid.child top ~index:0 in
      write rig top 0 (v8 "parent");
      write rig sub 1 (v8 "child");
      Recovery_mgr.abort rig.rm ~tid:sub;
      commit rig top);
  ignore (run_fiber rig (fun () -> crash_and_recover rig));
  Alcotest.(check string) "parent update survives" (v8 "parent") (read_disk rig 0);
  Alcotest.(check string) "aborted subtxn update does not"
    (String.make 8 '\000') (read_disk rig 1)

let test_checkpoint_bounds_nothing_lost () =
  let rig = make_rig () in
  run_fiber rig (fun () ->
      let t1 = Tid.top ~node:0 ~seq:6 in
      write rig t1 0 (v8 "before");
      commit rig t1;
      ignore (Recovery_mgr.checkpoint rig.rm);
      let t2 = Tid.top ~node:0 ~seq:7 in
      write rig t2 1 (v8 "after");
      commit rig t2);
  ignore (run_fiber rig (fun () -> crash_and_recover rig));
  Alcotest.(check string) "pre-checkpoint update" (v8 "before") (read_disk rig 0);
  Alcotest.(check string) "post-checkpoint update" (v8 "after") (read_disk rig 1)

(* Model-based property: a random schedule of commit/abort/crash over
   several objects; after every crash+recovery, the disk must equal the
   model of committed values. *)
let prop_random_schedules =
  QCheck.Test.make ~name:"value recovery matches model on random schedules"
    ~count:40
    QCheck.(
      list_of_size (Gen.int_bound 50)
        (pair (int_range 0 3) (pair (int_range 0 3) (int_range 0 2))))
    (fun script ->
      let rig = make_rig () in
      let model = Array.make 4 (String.make 8 '\000') in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (n, (value_tag, action)) ->
          incr seq;
          let value = v8 (Printf.sprintf "v%d" value_tag) in
          match action with
          | 0 ->
              (* committed write *)
              run_fiber rig (fun () ->
                  let tid = Tid.top ~node:0 ~seq:!seq in
                  write rig tid n value;
                  commit rig tid);
              model.(n) <- value
          | 1 ->
              (* aborted write *)
              run_fiber rig (fun () ->
                  let tid = Tid.top ~node:0 ~seq:!seq in
                  write rig tid n value;
                  Recovery_mgr.abort rig.rm ~tid)
          | _ ->
              (* uncommitted write, everything leaks to disk, crash *)
              run_fiber rig (fun () ->
                  let tid = Tid.top ~node:0 ~seq:!seq in
                  write rig tid n value;
                  Log_manager.force_all rig.log;
                  Vm.flush_all rig.vm);
              ignore (run_fiber rig (fun () -> crash_and_recover rig));
              for i = 0 to 3 do
                if read_disk rig i <> model.(i) then ok := false
              done)
        script;
      ignore (run_fiber rig (fun () -> crash_and_recover rig));
      for i = 0 to 3 do
        if read_disk rig i <> model.(i) then ok := false
      done;
      !ok)

let suites =
  [
    ( "recovery.value",
      [
        quick "committed redone" test_committed_redone;
        quick "uncommitted undone" test_uncommitted_undone_from_disk;
        quick "multi-update rollback" test_multiple_updates_same_txn;
        quick "abort then overwrite" test_abort_then_overwrite_then_crash;
        quick "prepared in doubt" test_prepared_applied_and_in_doubt;
        quick "subtxn abort record" test_subtxn_abort_record_respected;
        quick "checkpoint bounds" test_checkpoint_bounds_nothing_lost;
        QCheck_alcotest.to_alcotest prop_random_schedules;
      ] );
  ]
