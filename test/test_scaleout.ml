(* Sharded scale-out: topology and placement units, placement-aware
   directory lookups, key-range routing (local vs. distributed commit),
   seed-identity guards for the 1-shard topology, Cluster.run_fiber's
   typed failure modes, and a convergence property for cross-shard
   transactions with every optimization on over a lossy network. *)

open Tabs_sim
open Tabs_net
open Tabs_core
open Tabs_servers
open Tabs_obs

let quick name f = Alcotest.test_case name `Quick f

(* topology ---------------------------------------------------------------- *)

let test_topology_units () =
  let topo = Topology.one_per_node ~shards:4 in
  Alcotest.(check int) "shards" 4 (Topology.shards topo);
  Alcotest.(check int) "shard 2 on node 2" 2 (Topology.node_of_shard topo 2);
  Alcotest.(check int) "nodes required" 4 (Topology.nodes_required topo);
  Alcotest.(check string) "shard name" "s3" (Topology.shard_name topo 3);
  (* co-hosted layout: three shards on two nodes *)
  let co = Topology.create [| 0; 1; 0 |] in
  Alcotest.(check int) "co-hosted shards" 3 (Topology.shards co);
  Alcotest.(check (list int)) "shards on node 0" [ 0; 2 ]
    (Topology.shards_on_node co 0);
  Alcotest.(check (list int)) "shards on node 1" [ 1 ]
    (Topology.shards_on_node co 1);
  Alcotest.(check int) "two nodes cover it" 2 (Topology.nodes_required co)

(* placement --------------------------------------------------------------- *)

let test_placement_ranges () =
  let p = Placement.create (Topology.one_per_node ~shards:4) in
  Placement.partition p ~server:"k" ~keys:100;
  Alcotest.(check (list (triple int int int)))
    "even split, remainder to the first ranges"
    [ (0, 0, 25); (1, 25, 50); (2, 50, 75); (3, 75, 100) ]
    (Placement.ranges p ~server:"k");
  let loc = Placement.locate p ~server:"k" ~key:60 in
  Alcotest.(check int) "key 60 on shard 2" 2 loc.Placement.shard;
  Alcotest.(check int) "hosted by node 2" 2 loc.Placement.node;
  Alcotest.(check string) "instance name" "k.s2" loc.Placement.instance;
  Alcotest.(check int) "range base" 50 loc.Placement.base;
  Alcotest.(check (list int)) "single-shard key set" [ 1 ]
    (Placement.shards_of p ~server:"k" ~keys:[ 30; 40; 49 ]);
  Alcotest.(check (list int)) "cross-shard key set" [ 0; 3 ]
    (Placement.shards_of p ~server:"k" ~keys:[ 99; 3; 0 ]);
  (* uneven split: 10 keys over 4 shards is 3,3,2,2 *)
  let q = Placement.create (Topology.one_per_node ~shards:4) in
  Placement.partition q ~server:"k" ~keys:10;
  Alcotest.(check (list (triple int int int)))
    "10 over 4" [ (0, 0, 3); (1, 3, 6); (2, 6, 8); (3, 8, 10) ]
    (Placement.ranges q ~server:"k");
  Alcotest.(check_raises) "double placement rejected"
    (Invalid_argument "Placement: keyspace k already placed")
    (fun () -> Placement.partition q ~server:"k" ~keys:10)

(* more shards than keys: the trailing ranges are empty, keys still
   route, and the out-of-range error reports the true bound (the last
   non-empty range's hi), not the last range's *)
let test_placement_more_shards_than_keys () =
  let p = Placement.create (Topology.one_per_node ~shards:4) in
  Placement.partition p ~server:"k" ~keys:2;
  Alcotest.(check (list (triple int int int)))
    "2 keys over 4 shards leaves two empty ranges"
    [ (0, 0, 1); (1, 1, 2); (2, 2, 2); (3, 2, 2) ]
    (Placement.ranges p ~server:"k");
  Alcotest.(check int) "key 0 on shard 0" 0
    (Placement.locate p ~server:"k" ~key:0).Placement.shard;
  Alcotest.(check int) "key 1 on shard 1" 1
    (Placement.locate p ~server:"k" ~key:1).Placement.shard;
  Alcotest.(check_raises) "key 2 reports the real bound"
    (Invalid_argument "Placement: key 2 outside keyspace k [0, 2)")
    (fun () -> ignore (Placement.locate p ~server:"k" ~key:2));
  Alcotest.(check_raises) "negative key reports the real bound"
    (Invalid_argument "Placement: key -1 outside keyspace k [0, 2)")
    (fun () -> ignore (Placement.locate p ~server:"k" ~key:(-1)))

let test_placement_hashed () =
  let p = Placement.create (Topology.one_per_node ~shards:4) in
  Placement.partition_hashed p ~server:"bt";
  let loc = Placement.locate_hashed p ~server:"bt" ~key:"alpha" in
  Alcotest.(check bool) "shard in range" true
    (loc.Placement.shard >= 0 && loc.Placement.shard < 4);
  Alcotest.(check int) "hashed keyspaces keep global keys" 0
    loc.Placement.base;
  let again = Placement.locate_hashed p ~server:"bt" ~key:"alpha" in
  Alcotest.(check int) "deterministic" loc.Placement.shard
    again.Placement.shard;
  (* keys spread: 64 distinct keys should not all land on one shard *)
  let shards =
    List.sort_uniq compare
      (List.init 64 (fun i ->
           (Placement.locate_hashed p ~server:"bt"
              ~key:(Printf.sprintf "key-%d" i))
             .Placement.shard))
  in
  Alcotest.(check bool) "hash spreads over shards" true
    (List.length shards > 1)

(* placement-aware directory ----------------------------------------------- *)

let test_range_entries () =
  let id = Tabs_name.Name_server.range_object_id ~lo:25 ~hi:50 in
  Alcotest.(check (option (pair int int)))
    "range round-trips" (Some (25, 50))
    (Tabs_name.Name_server.range_of_entry
       { Tabs_name.Name_server.name = "k"; node = 1; server = "k.s1"; object_id = id });
  Alcotest.(check (option (pair int int)))
    "plain object id has no range" None
    (Tabs_name.Name_server.range_of_entry
       { Tabs_name.Name_server.name = "k"; node = 0; server = "a"; object_id = "accounts" })

let test_lookup_owner_across_nodes () =
  let c = Cluster.create ~nodes:2 () in
  let arr = Sharded.Int_array.deploy c ~name:"k" ~keys:32 () in
  ignore arr;
  (* node 1 resolves the owner of a key it does not host: local miss,
     broadcast, covering reply from node 0 *)
  let ns1 = Node.ns (Cluster.node c 1) in
  let entry =
    Cluster.run_fiber c ~node:1 (fun () ->
        Tabs_name.Name_server.lookup_owner ns1 ~name:"k" ~key:3 ())
  in
  (match entry with
  | None -> Alcotest.fail "no owner found for key 3"
  | Some e ->
      Alcotest.(check string) "owning instance" "k.s0"
        e.Tabs_name.Name_server.server;
      Alcotest.(check int) "owning node" 0 e.Tabs_name.Name_server.node;
      (match Placement.location_of_entry e with
      | None -> Alcotest.fail "entry did not decode to a location"
      | Some loc ->
          Alcotest.(check int) "decoded shard" 0 loc.Placement.shard;
          Alcotest.(check int) "decoded base" 0 loc.Placement.base));
  let nobody =
    Cluster.run_fiber c ~node:1 (fun () ->
        Tabs_name.Name_server.lookup_owner ns1 ~name:"k" ~key:999
          ~max_wait:20_000 ())
  in
  Alcotest.(check bool) "no covering owner for out-of-range key" true
    (nobody = None)

(* routing ----------------------------------------------------------------- *)

let test_single_shard_commits_locally () =
  let c = Cluster.create ~nodes:4 () in
  let arr = Sharded.Int_array.deploy c ~name:"k" ~keys:64 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          (* keys 1 and 2 live in shard 0's range [0,16) *)
          Sharded.Int_array.set arr rpc tid 1 11;
          Sharded.Int_array.set arr rpc tid 2 22));
  Alcotest.(check int) "single-shard commit is not distributed" 0
    (Tabs_tm.Txn_mgr.distributed_commits tm);
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          (* keys 1 and 20 span shards 0 and 1 *)
          Sharded.Int_array.set arr rpc tid 1 111;
          Sharded.Int_array.set arr rpc tid 20 222));
  Alcotest.(check int) "cross-shard commit is tree 2PC" 1
    (Tabs_tm.Txn_mgr.distributed_commits tm);
  let v1, v20 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            ( Sharded.Int_array.get arr rpc tid 1,
              Sharded.Int_array.get arr rpc tid 20 )))
  in
  Alcotest.(check (pair int int)) "both writes visible" (111, 222) (v1, v20)

let test_cross_shard_transfer () =
  let c = Cluster.create ~nodes:2 () in
  let acct = Sharded.Accounts.deploy c ~name:"acct" ~accounts:32 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  (* account 2 on shard 0, account 20 on shard 1 *)
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          Sharded.Accounts.deposit acct rpc tid 2 100);
      Txn_lib.execute_transaction tm (fun tid ->
          Sharded.Accounts.transfer acct rpc tid ~from_:2 ~to_:20 30));
  Alcotest.(check bool) "transfer used distributed commit" true
    (Tabs_tm.Txn_mgr.distributed_commits tm > 0);
  let b2, b20 =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            ( Sharded.Accounts.balance acct rpc tid 2,
              Sharded.Accounts.balance acct rpc tid 20 )))
  in
  Alcotest.(check (pair int int)) "money conserved across shards" (70, 30)
    (b2, b20);
  (* the funds check survives sharding: an overdraft aborts the whole
     transaction and both balances stand *)
  Cluster.run_fiber c ~node:0 (fun () ->
      match
        Txn_lib.execute_transaction tm (fun tid ->
            Sharded.Accounts.transfer acct rpc tid ~from_:2 ~to_:20 1000)
      with
      | () -> Alcotest.fail "overdraft committed"
      | exception Errors.Server_error "InsufficientFunds" -> ());
  let b2', b20' =
    Cluster.run_fiber c ~node:0 (fun () ->
        Txn_lib.execute_transaction tm (fun tid ->
            ( Sharded.Accounts.balance acct rpc tid 2,
              Sharded.Accounts.balance acct rpc tid 20 )))
  in
  Alcotest.(check (pair int int)) "balances unchanged after overdraft"
    (70, 30) (b2', b20');
  List.iter
    (fun (_, inst) ->
      Alcotest.(check int) "no leaked locks" 0
        (Tabs_lock.Lock_manager.total_holds
           (Server_lib.lock_manager (Account_server.server inst))))
    (Sharded.Accounts.instances acct)

let test_btree_routing () =
  let c = Cluster.create ~nodes:3 () in
  let bt = Sharded.Btree.deploy c ~name:"bt" ~segment:5 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let keys = List.init 12 (fun i -> Printf.sprintf "key-%d" i) in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          List.iter
            (fun k -> Sharded.Btree.insert bt rpc tid ~key:k ~value:("v" ^ k))
            keys);
      Txn_lib.execute_transaction tm (fun tid ->
          List.iter
            (fun k ->
              Alcotest.(check (option string))
                ("lookup " ^ k)
                (Some ("v" ^ k))
                (Sharded.Btree.lookup bt rpc tid ~key:k))
            keys))

(* seed identity at 1 shard ------------------------------------------------ *)

(* The seed probe (test_group_commit.ml) run against an explicit 1-shard
   topology and a sharded deployment, touching the instance directly:
   the sharded machinery must not perturb a single primitive charge or
   the virtual finish time. *)
let test_one_shard_probe_identical () =
  let c =
    Cluster.create ~topology:(Topology.one_per_node ~shards:1) ~nodes:1 ()
  in
  let arr = Sharded.Int_array.deploy c ~name:"a0" ~keys:64 () in
  let inst =
    match Sharded.Int_array.instances arr with
    | [ (0, inst) ] -> inst
    | _ -> Alcotest.fail "expected exactly one shard instance"
  in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 in
  let engine = Cluster.engine c in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.get inst tid 0));
      Txn_lib.execute_transaction tm (fun tid ->
          let v = Int_array_server.get inst tid 0 in
          Int_array_server.set inst tid 0 (v + 1)));
  let count p = Metrics.count (Engine.metrics engine) p in
  Alcotest.(check int) "small messages" 20
    (count Cost_model.Small_contiguous_message);
  Alcotest.(check int) "large messages" 2
    (count Cost_model.Large_contiguous_message);
  Alcotest.(check int) "random paged IO" 1 (count Cost_model.Random_paged_io);
  Alcotest.(check int) "stable writes" 1
    (count Cost_model.Stable_storage_write);
  Alcotest.(check int) "datagrams" 0 (count Cost_model.Datagram);
  Alcotest.(check int) "forces" 1
    (Tabs_wal.Log_manager.force_count (Node.log n0));
  Alcotest.(check int) "virtual finish time" 313_800 (Engine.now engine)

(* The routed path at 1 shard against the plain local-RPC path: same
   transactions, every primitive count equal, same finish time. *)
let run_routed_probe () =
  let c = Cluster.create ~nodes:1 () in
  let arr = Sharded.Int_array.deploy c ~name:"k" ~keys:64 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Sharded.Int_array.get arr rpc tid 0));
      Txn_lib.execute_transaction tm (fun tid ->
          let v = Sharded.Int_array.get arr rpc tid 0 in
          Sharded.Int_array.set arr rpc tid 0 (v + 1)));
  c

let run_direct_probe () =
  let c = Cluster.create ~nodes:1 () in
  let n0 = Cluster.node c 0 in
  ignore
    (Int_array_server.create (Node.env n0) ~name:"k.s0" ~segment:1 ~cells:64 ());
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          ignore (Int_array_server.call_get rpc ~dest:0 ~server:"k.s0" tid 0));
      Txn_lib.execute_transaction tm (fun tid ->
          let v = Int_array_server.call_get rpc ~dest:0 ~server:"k.s0" tid 0 in
          Int_array_server.call_set rpc ~dest:0 ~server:"k.s0" tid 0 (v + 1)));
  c

let test_one_shard_routing_costs_nothing () =
  let routed = run_routed_probe () and direct = run_direct_probe () in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Cost_model.name p)
        (Metrics.count (Engine.metrics (Cluster.engine direct)) p)
        (Metrics.count (Engine.metrics (Cluster.engine routed)) p))
    Cost_model.all;
  Alcotest.(check int) "same virtual finish time"
    (Engine.now (Cluster.engine direct))
    (Engine.now (Cluster.engine routed))

(* The Section 5 local read and write rows, reproduced through the
   sharded path on a 1-shard cluster: same per-transaction elapsed
   virtual time as the seed's pinned vectors. *)
let measure_sharded_txn body =
  let c = Cluster.create ~nodes:1 () in
  let arr = Sharded.Int_array.deploy c ~name:"array0" ~keys:1024 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  let engine = Cluster.engine c in
  Cluster.run_fiber c ~node:0 (fun () ->
      (* one warmup, two measured: both measured iterations must agree *)
      Txn_lib.execute_transaction tm (fun tid -> body arr rpc tid);
      let t0 = Engine.now engine in
      Txn_lib.execute_transaction tm (fun tid -> body arr rpc tid);
      let t1 = Engine.now engine in
      Txn_lib.execute_transaction tm (fun tid -> body arr rpc tid);
      let t2 = Engine.now engine in
      Alcotest.(check int) "steady state" (t1 - t0) (t2 - t1);
      t1 - t0)

let test_one_shard_workload_vectors () =
  Alcotest.(check int) "1 Local Read, No Paging via sharded path" 98_100
    (measure_sharded_txn (fun arr rpc tid ->
         ignore (Sharded.Int_array.get arr rpc tid 0)));
  Alcotest.(check int) "1 Local Write, No Paging via sharded path" 235_900
    (measure_sharded_txn (fun arr rpc tid ->
         Sharded.Int_array.set arr rpc tid 0 1))

(* run_fiber failure modes ------------------------------------------------- *)

let test_run_fiber_killed () =
  let c = Cluster.create ~nodes:1 () in
  let n0 = Cluster.node c 0 in
  Engine.at (Cluster.engine c) ~delay:1_000 (fun () -> Node.crash n0);
  match Cluster.run_fiber c ~node:0 (fun () -> Engine.delay 10_000) with
  | () -> Alcotest.fail "fiber survived its node's crash"
  | exception Errors.Fiber_killed { node } ->
      Alcotest.(check int) "killed on node 0" 0 node

let test_run_fiber_stalled () =
  let c = Cluster.create ~nodes:1 () in
  let q : unit Engine.Waitq.t = Engine.Waitq.create () in
  match Cluster.run_fiber c ~node:0 (fun () -> Engine.Waitq.wait q) with
  | () -> Alcotest.fail "wait on a never-signaled queue returned"
  | exception Errors.Fiber_stalled { node; reason } ->
      Alcotest.(check int) "stalled on node 0" 0 node;
      Alcotest.(check bool) "diagnosed as suspended, not unscheduled" true
        (String.length reason > 0
        && String.sub reason 0 9 = "suspended")

(* per-node metrics rollup ------------------------------------------------- *)

let test_per_node_rollup () =
  let c = Cluster.create ~nodes:2 () in
  let arr = Sharded.Int_array.deploy c ~name:"k" ~keys:32 () in
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.run_fiber c ~node:0 (fun () ->
      Txn_lib.execute_transaction tm (fun tid ->
          (* key 1 on shard 0 (local), key 20 on shard 1 (remote) *)
          Sharded.Int_array.set arr rpc tid 1 1;
          Sharded.Int_array.set arr rpc tid 20 2));
  let m = Engine.metrics (Cluster.engine c) in
  let tracked = Metrics.nodes_tracked m in
  Alcotest.(check bool) "node 0 charged" true (List.mem 0 tracked);
  Alcotest.(check bool) "node 1 charged" true (List.mem 1 tracked);
  (* both participants forced a commit record: each node's rollup shows
     stable-storage writes, and the rollup never exceeds the global *)
  Alcotest.(check bool) "node 0 paid forces" true
    (Metrics.node_weight m ~node:0 Cost_model.Stable_storage_write > 0.);
  Alcotest.(check bool) "node 1 paid forces" true
    (Metrics.node_weight m ~node:1 Cost_model.Stable_storage_write > 0.);
  let rollup_sum =
    List.fold_left
      (fun acc n ->
        acc +. Metrics.node_weight m ~node:n Cost_model.Stable_storage_write)
      0. tracked
  in
  Alcotest.(check bool) "rollup bounded by the global counter" true
    (rollup_sum <= Metrics.weight m Cost_model.Stable_storage_write +. 0.001)

(* zipf -------------------------------------------------------------------- *)

let test_zipf_shape () =
  let rng = Rng.create ~seed:9 in
  let z = Rng.Zipf.create ~n:100 ~theta:0.9 in
  let freq = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let k = Rng.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    freq.(k) <- freq.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 is the hottest" true
    (Array.for_all (fun f -> f <= freq.(0)) freq);
  Alcotest.(check bool) "rank 0 clearly above uniform" true
    (freq.(0) > 500);
  (* theta 0 degenerates to uniform: no key should dominate *)
  let u = Rng.Zipf.create ~n:100 ~theta:0. in
  let ufreq = Array.make 100 0 in
  for _ = 1 to 10_000 do
    let k = Rng.Zipf.sample u rng in
    ufreq.(k) <- ufreq.(k) + 1
  done;
  Alcotest.(check bool) "theta 0 is flat" true
    (Array.for_all (fun f -> f < 300) ufreq)

(* convergence property ---------------------------------------------------- *)

(* Cross-shard transactions with group commit, background checkpointing,
   and comm batching all on, over a lossy network: after healing and
   draining, every transaction is atomic across its three shards, trace
   outcomes converge, nothing is in doubt, and no locks leak. *)
let conv_txns = 6

let run_convergence_case ~loss ~seed () =
  let c =
    Cluster.create ~nodes:3 ~seed
      ~group_commit:{ Tabs_recovery.Group_commit.window = 5_000; max_batch = 64 }
      ~checkpointing:{ Tabs_recovery.Checkpointer.interval = 100_000; trickle = 4 }
      ~comm_batching:Tabs_net.Comm_mgr.default_batching ()
  in
  let arr = Sharded.Int_array.deploy c ~name:"k" ~keys:48 () in
  let recorder = Recorder.attach (Cluster.engine c) in
  Network.set_loss (Cluster.network c) loss;
  let n0 = Cluster.node c 0 in
  let tm = Node.tm n0 and rpc = Node.rpc n0 in
  Cluster.spawn c ~node:0 (fun () ->
      for i = 0 to conv_txns - 1 do
        try
          Txn_lib.execute_transaction tm (fun tid ->
              (* one key in each shard's range: [0,16), [16,32), [32,48) *)
              Sharded.Int_array.set arr rpc tid i (100 + i);
              Sharded.Int_array.set arr rpc tid (16 + i) (100 + i);
              Sharded.Int_array.set arr rpc tid (32 + i) (100 + i))
        with
        | Errors.Lock_timeout _ | Errors.Deadlock _
        | Errors.Transaction_is_aborted _
        | Rpc.Rpc_timeout _ ->
            ()
      done);
  Cluster.run_until c ~time:600_000_000;
  Network.set_loss (Cluster.network c) 0.0;
  Cluster.run c;
  let entries = Recorder.entries recorder in
  Recorder.detach recorder;
  let outcomes : (string, bool list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ({ event; _ } : Recorder.entry) ->
      let note tid committed =
        let key = Tabs_wal.Tid.to_string tid in
        let prev = Option.value (Hashtbl.find_opt outcomes key) ~default:[] in
        Hashtbl.replace outcomes key (committed :: prev)
      in
      match event with
      | Tabs_tm.Txn_mgr.Txn_commit { tid; _ } -> note tid true
      | Tabs_tm.Txn_mgr.Txn_abort { tid; _ } -> note tid false
      | _ -> ())
    entries;
  let converged =
    Hashtbl.fold
      (fun _ recorded ok ->
        ok && not (List.mem true recorded && List.mem false recorded))
      outcomes true
  in
  let atomic =
    Cluster.run_fiber c ~node:0 (fun () ->
        List.for_all
          (fun i ->
            Txn_lib.execute_transaction tm (fun tid ->
                let a = Sharded.Int_array.get arr rpc tid i in
                let b = Sharded.Int_array.get arr rpc tid (16 + i) in
                let c' = Sharded.Int_array.get arr rpc tid (32 + i) in
                a = b && b = c' && (a = 0 || a = 100 + i)))
          (List.init conv_txns (fun i -> i)))
  in
  let nothing_in_doubt =
    List.for_all
      (fun node -> Tabs_tm.Txn_mgr.in_doubt (Node.tm node) = [])
      (Cluster.nodes c)
  in
  let no_leaked_locks =
    List.for_all
      (fun (_, inst) ->
        Tabs_lock.Lock_manager.total_holds
          (Server_lib.lock_manager (Int_array_server.server inst))
        = 0)
      (Sharded.Int_array.instances arr)
  in
  let spans_balanced = Span.balanced (Span.of_entries entries) in
  converged && atomic && nothing_in_doubt && no_leaked_locks
  && spans_balanced

let prop_cross_shard_convergence =
  QCheck.Test.make
    ~name:
      "cross-shard transactions converge under loss with group commit, \
       checkpointing, and comm batching on"
    ~count:6
    QCheck.(pair bool small_int)
    (fun (heavy, seed) ->
      run_convergence_case
        ~loss:(if heavy then 0.20 else 0.05)
        ~seed:(seed + 1) ())

let suites =
  [
    ( "scaleout",
      [
        quick "topology units" test_topology_units;
        quick "placement ranges and locate" test_placement_ranges;
        quick "placement with more shards than keys"
          test_placement_more_shards_than_keys;
        quick "placement hashed keyspaces" test_placement_hashed;
        quick "range directory entries" test_range_entries;
        quick "lookup_owner across nodes" test_lookup_owner_across_nodes;
        quick "single-shard local, cross-shard 2PC"
          test_single_shard_commits_locally;
        quick "cross-shard transfer atomicity" test_cross_shard_transfer;
        quick "btree hash routing" test_btree_routing;
        quick "1-shard probe identical to seed" test_one_shard_probe_identical;
        quick "1-shard routing charges nothing extra"
          test_one_shard_routing_costs_nothing;
        quick "1-shard workload vectors identical"
          test_one_shard_workload_vectors;
        quick "run_fiber reports killed fibers" test_run_fiber_killed;
        quick "run_fiber diagnoses deadlocked fibers" test_run_fiber_stalled;
        quick "per-node metrics rollup" test_per_node_rollup;
        quick "zipf generator shape" test_zipf_shape;
        QCheck_alcotest.to_alcotest prop_cross_shard_convergence;
      ] );
  ]
