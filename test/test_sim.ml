(* Tests for the simulation substrate: heap, clock, fibers, wait queues,
   metrics, crash semantics. *)

open Tabs_sim

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h ~key:k (string_of_int k)) [ 5; 1; 9; 1; 3 ];
  let order = ref [] in
  while not (Heap.is_empty h) do
    let k, v = Heap.pop_min h in
    order := (k, v) :: !order
  done;
  Alcotest.(check (list (pair int string)))
    "sorted, FIFO among ties"
    [ (1, "1"); (1, "1"); (3, "3"); (5, "5"); (9, "9") ]
    (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~key:7 v) [ "a"; "b"; "c" ];
  let vs = List.init 3 (fun _ -> snd (Heap.pop_min h)) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] vs

let test_heap_random_sorted () =
  let rng = Rng.create ~seed:42 in
  let h = Heap.create () in
  let keys = List.init 500 (fun _ -> Rng.int rng 1000) in
  List.iter (fun k -> Heap.push h ~key:k k) keys;
  let out = List.init 500 (fun _ -> fst (Heap.pop_min h)) in
  Alcotest.(check (list int)) "heap sorts" (List.sort compare keys) out

let test_clock_advances () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.at e ~delay:100 (fun () -> times := Engine.now e :: !times);
  Engine.at e ~delay:50 (fun () -> times := Engine.now e :: !times);
  let _ = Engine.run e in
  Alcotest.(check (list int)) "events in time order" [ 50; 100 ] (List.rev !times);
  Alcotest.(check int) "clock at last event" 100 (Engine.now e)

let test_fiber_delay () =
  let e = Engine.create () in
  let finished = ref (-1) in
  let _ =
    Engine.spawn e (fun () ->
        Engine.delay 10;
        Engine.delay 20;
        finished := Engine.now e)
  in
  let _ = Engine.run e in
  Alcotest.(check int) "delays accumulate" 30 !finished

let test_fiber_charge_costs () =
  let e = Engine.create () in
  let _ =
    Engine.spawn e (fun () ->
        Engine.charge e Cost_model.Small_contiguous_message;
        Engine.charge e Cost_model.Stable_storage_write)
  in
  let _ = Engine.run e in
  Alcotest.(check int) "elapsed = 3ms + 79ms" 82_000 (Engine.now e);
  Alcotest.(check int) "metrics counted small msg" 1
    (Metrics.count (Engine.metrics e) Cost_model.Small_contiguous_message)

let test_waitq_signal () =
  let e = Engine.create () in
  let q = Engine.Waitq.create () in
  let got = ref 0 in
  let _ = Engine.spawn e (fun () -> got := Engine.Waitq.wait q) in
  let _ =
    Engine.spawn e (fun () ->
        Engine.delay 5;
        ignore (Engine.Waitq.signal q ~engine:e 42))
  in
  let _ = Engine.run e in
  Alcotest.(check int) "value passed through" 42 !got

let test_waitq_timeout () =
  let e = Engine.create () in
  let q : int Engine.Waitq.t = Engine.Waitq.create () in
  let result = ref (Some 0) in
  let _ =
    Engine.spawn e (fun () ->
        result := Engine.Waitq.wait_timeout q ~engine:e ~timeout:100)
  in
  let _ = Engine.run e in
  Alcotest.(check bool) "timed out" true (!result = None);
  Alcotest.(check int) "waited full timeout" 100 (Engine.now e)

let test_waitq_signal_beats_timeout () =
  let e = Engine.create () in
  let q : int Engine.Waitq.t = Engine.Waitq.create () in
  let result = ref None in
  let _ =
    Engine.spawn e (fun () ->
        result := Engine.Waitq.wait_timeout q ~engine:e ~timeout:100)
  in
  Engine.at e ~delay:10 (fun () -> ignore (Engine.Waitq.signal q ~engine:e 7));
  let _ = Engine.run e in
  Alcotest.(check bool) "signaled in time" true (!result = Some 7)

let test_waitq_fifo () =
  let e = Engine.create () in
  let q = Engine.Waitq.create () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           let v = Engine.Waitq.wait q in
           order := (i, v) :: !order))
  done;
  Engine.at e ~delay:1 (fun () ->
      ignore (Engine.Waitq.signal_all q ~engine:e 0));
  let _ = Engine.run e in
  Alcotest.(check (list (pair int int)))
    "woken in wait order"
    [ (1, 0); (2, 0); (3, 0) ]
    (List.rev !order)

let test_crash_kills_fiber () =
  let e = Engine.create () in
  let q : unit Engine.Waitq.t = Engine.Waitq.create () in
  let reached = ref false in
  let _ =
    Engine.spawn e ~node:1 (fun () ->
        Engine.Waitq.wait q;
        reached := true)
  in
  Engine.at e ~delay:10 (fun () -> Engine.crash_node e 1);
  Engine.at e ~delay:20 (fun () ->
      ignore (Engine.Waitq.signal q ~engine:e ()));
  let _ = Engine.run e in
  Alcotest.(check bool) "crashed fiber never resumes" false !reached

let test_crash_spares_other_nodes () =
  let e = Engine.create () in
  let survived = ref false in
  let _ =
    Engine.spawn e ~node:2 (fun () ->
        Engine.delay 50;
        survived := true)
  in
  Engine.at e ~delay:10 (fun () -> Engine.crash_node e 1);
  let _ = Engine.run e in
  Alcotest.(check bool) "node 2 fiber survives" true !survived

let test_restart_after_crash () =
  let e = Engine.create () in
  let runs = ref [] in
  let _ = Engine.spawn e ~node:1 (fun () -> Engine.delay 100; runs := "old" :: !runs) in
  Engine.at e ~delay:10 (fun () ->
      Engine.crash_node e 1;
      ignore (Engine.spawn e ~node:1 (fun () -> runs := "new" :: !runs)));
  let _ = Engine.run e in
  Alcotest.(check (list string)) "only post-restart fiber runs" [ "new" ] !runs

let test_cpu_accounting () =
  let e = Engine.create () in
  let _ =
    Engine.spawn e (fun () ->
        Engine.charge_cpu e ~process:"tm" 36_000;
        Engine.charge_cpu e ~process:"rm" 5_000;
        Engine.charge_cpu e ~process:"tm" 1_000)
  in
  let _ = Engine.run e in
  Alcotest.(check int) "tm cpu" 37_000 (Engine.cpu_time e ~process:"tm");
  Alcotest.(check int) "rm cpu" 5_000 (Engine.cpu_time e ~process:"rm");
  Alcotest.(check int) "elapsed covers all" 42_000 (Engine.now e);
  Engine.reset_cpu e;
  Alcotest.(check int) "reset" 0 (Engine.cpu_time e ~process:"tm")

let test_metrics_diff_and_weighting () =
  let m = Metrics.create () in
  Metrics.record_many m Cost_model.Datagram 4;
  Metrics.record m Cost_model.Stable_storage_write;
  let before = Metrics.snapshot m in
  Metrics.record_many m Cost_model.Datagram 2;
  let d = Metrics.diff ~later:m ~earlier:before in
  Alcotest.(check int) "diff datagrams" 2 (Metrics.count d Cost_model.Datagram);
  Alcotest.(check int) "diff stable" 0
    (Metrics.count d Cost_model.Stable_storage_write);
  Alcotest.(check int) "weighted = 6*25 + 79 ms"
    ((6 * 25_000) + 79_000)
    (Metrics.weighted_cost m Cost_model.measured)

let test_cost_tables_match_paper () =
  let check_ms model p ms =
    Alcotest.(check int)
      (Cost_model.name p)
      (int_of_float (ms *. 1000.))
      (Cost_model.cost model p)
  in
  check_ms Cost_model.measured Cost_model.Data_server_call 26.1;
  check_ms Cost_model.measured Cost_model.Inter_node_data_server_call 89.;
  check_ms Cost_model.measured Cost_model.Stable_storage_write 79.;
  check_ms Cost_model.achievable Cost_model.Data_server_call 2.5;
  check_ms Cost_model.achievable Cost_model.Stable_storage_write 32.

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let prop_rng_bounds =
  QCheck.Test.make ~name:"rng stays in bounds" ~count:200
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops sorted" ~count:100
    QCheck.(list int)
    (fun keys ->
      let h = Heap.create () in
      List.iter (fun k -> Heap.push h ~key:k k) keys;
      let out = List.init (List.length keys) (fun _ -> fst (Heap.pop_min h)) in
      out = List.sort compare keys)

(* PR 8 struct-of-arrays heap against a reference sorted-list model:
   same (key, seq) order, FIFO among equal keys (values are insertion
   ranks, so a tie broken out of order is visible). *)
let prop_heap_model =
  QCheck.Test.make ~name:"heap matches sorted-list model (FIFO ties)"
    ~count:200
    QCheck.(list (option (int_range 0 15)))
    (fun ops ->
      let h = Heap.create () in
      let model = ref [] in
      let rank = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some key ->
              let v = !rank in
              incr rank;
              Heap.push h ~key v;
              model :=
                List.merge
                  (fun (k1, s1) (k2, s2) -> compare (k1, s1) (k2, s2))
                  !model
                  [ (key, v) ]
          | None -> (
              match !model with
              | [] -> if not (Heap.is_empty h) then ok := false
              | (k, v) :: rest ->
                  model := rest;
                  if Heap.pop_min h <> (k, v) then ok := false))
        ops;
      (* drain what remains *)
      List.iter
        (fun (k, v) -> if Heap.pop_min h <> (k, v) then ok := false)
        !model;
      !ok && Heap.is_empty h)

let test_heap_clear_reusable () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~key:(100 - i) i
  done;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h);
  Heap.push h ~key:7 42;
  Alcotest.(check (pair int int)) "usable after clear" (7, 42) (Heap.pop_min h)

(* Two-tier event queue vs the seed boxed heap kept as its baseline
   arm: identical (key, value) pop order on arbitrary interleavings of
   dense delay-0 and short-delay pushes — the engine's determinism
   contract across the PR 8 queue swap. *)
let prop_event_queue_modes =
  QCheck.Test.make ~name:"event queue: fast mode = seed order" ~count:200
    QCheck.(list (option (int_range 0 3)))
    (fun ops ->
      let fast = Event_queue.create ~baseline:false () in
      let slow = Event_queue.create ~baseline:true () in
      let now = ref 0 in
      let stamp = ref 0 in
      let ok = ref true in
      let pop_both () =
        let k1 = Event_queue.min_key fast and k2 = Event_queue.min_key slow in
        let v1 = Event_queue.pop fast and v2 = Event_queue.pop slow in
        if k1 <> k2 || v1 <> v2 then ok := false;
        now := k1
      in
      List.iter
        (fun op ->
          match op with
          | Some d ->
              incr stamp;
              Event_queue.push fast ~now:!now ~key:(!now + d) !stamp;
              Event_queue.push slow ~now:!now ~key:(!now + d) !stamp
          | None ->
              if Event_queue.is_empty fast <> Event_queue.is_empty slow then
                ok := false
              else if not (Event_queue.is_empty fast) then pop_both ())
        ops;
      while (not (Event_queue.is_empty fast)) && not (Event_queue.is_empty slow)
      do
        pop_both ()
      done;
      !ok && Event_queue.is_empty fast && Event_queue.is_empty slow)

let test_simulation_deterministic () =
  (* two identical runs of a small workload produce byte-identical
     virtual times and metrics — the property every benchmark and
     crash test relies on *)
  let run () =
    let e = Engine.create () in
    let q = Engine.Waitq.create () in
    let trace = ref [] in
    for i = 1 to 5 do
      ignore
        (Engine.spawn e (fun () ->
             Engine.delay (i * 7);
             Engine.charge e Cost_model.Small_contiguous_message;
             (match
                Engine.Waitq.wait_timeout q ~engine:e ~timeout:(i * 100)
              with
             | Some v -> trace := (i, v, Engine.now e) :: !trace
             | None -> trace := (i, -1, Engine.now e) :: !trace);
             if i mod 2 = 0 then
               ignore (Engine.Waitq.signal q ~engine:e i)))
    done;
    let _ = Engine.run e in
    (!trace, Engine.now e, Metrics.count (Engine.metrics e) Cost_model.Small_contiguous_message)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical traces" true (a = b)

(* Satellite regression for the seed's [q.queue @ [w]] O(n) append:
   grant order must stay strictly FIFO at 10^3 waiters, and [waiters]
   must count them without scanning. *)
let test_waitq_fifo_1000 () =
  let e = Engine.create () in
  let q = Engine.Waitq.create () in
  let order = ref [] in
  let n = 1_000 in
  for i = 0 to n - 1 do
    ignore
      (Engine.spawn e (fun () ->
           let v = Engine.Waitq.wait q in
           order := (i, v) :: !order))
  done;
  Engine.at e ~delay:10 (fun () ->
      Alcotest.(check int) "all parked and counted" n (Engine.Waitq.waiters q));
  Engine.at e ~delay:20 (fun () ->
      for v = 0 to n - 1 do
        ignore (Engine.Waitq.signal q ~engine:e v)
      done);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int)))
    "FIFO grant order at 10^3 waiters"
    (List.init n (fun i -> (i, i)))
    (List.rev !order);
  Alcotest.(check int) "drained" 0 (Engine.Waitq.waiters q)

(* Tentpole (c) contract: with no tracer installed and no charges, the
   optimized dispatch loop is allocation-free — 10^6 pre-scheduled
   callback events run within a fraction of a word of minor allocation
   per event. *)
let test_zero_cost_dispatch () =
  Sim_profile.with_baseline false (fun () ->
      let e = Engine.create () in
      Alcotest.(check bool) "tracing off" false (Engine.tracing e);
      let nop () = () in
      let n = 1_000_000 in
      for i = 1 to n do
        Engine.at e ~delay:i nop
      done;
      let before = Gc.minor_words () in
      let processed = Engine.run e in
      let words = Gc.minor_words () -. before in
      let per_event = words /. float_of_int n in
      Alcotest.(check int) "all events processed" n processed;
      Alcotest.(check int) "events_processed counter" n
        (Engine.events_processed e);
      if per_event > 0.5 then
        Alcotest.failf "dispatch allocates %.2f words/event (budget 0.5)"
          per_event)

let quick name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "sim.heap",
      [
        quick "ordering" test_heap_order;
        quick "fifo ties" test_heap_fifo_ties;
        quick "random sorted" test_heap_random_sorted;
        QCheck_alcotest.to_alcotest prop_heap_sorts;
        quick "clear then reuse" test_heap_clear_reusable;
        QCheck_alcotest.to_alcotest prop_heap_model;
        QCheck_alcotest.to_alcotest prop_event_queue_modes;
      ] );
    ( "sim.engine",
      [
        quick "clock advances" test_clock_advances;
        quick "fiber delay" test_fiber_delay;
        quick "charge costs" test_fiber_charge_costs;
        quick "cpu accounting" test_cpu_accounting;
        quick "deterministic replay" test_simulation_deterministic;
        quick "zero-cost dispatch at 1M events" test_zero_cost_dispatch;
      ] );
    ( "sim.waitq",
      [
        quick "signal" test_waitq_signal;
        quick "timeout" test_waitq_timeout;
        quick "signal beats timeout" test_waitq_signal_beats_timeout;
        quick "fifo wakeup" test_waitq_fifo;
        quick "fifo grant order at 1000 waiters" test_waitq_fifo_1000;
      ] );
    ( "sim.crash",
      [
        quick "crash kills fiber" test_crash_kills_fiber;
        quick "other nodes unaffected" test_crash_spares_other_nodes;
        quick "restart isolates epochs" test_restart_after_crash;
      ] );
    ( "sim.metrics",
      [
        quick "diff and weighting" test_metrics_diff_and_weighting;
        quick "cost tables match paper" test_cost_tables_match_paper;
      ] );
    ( "sim.rng",
      [ quick "deterministic" test_rng_deterministic;
        QCheck_alcotest.to_alcotest prop_rng_bounds ] );
  ]
