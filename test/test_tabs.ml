(* Aggregated alcotest entry point; suites live in test_*.ml modules. *)

let () =
  Alcotest.run "tabs"
    (Test_sim.suites @ Test_storage.suites @ Test_wal.suites
   @ Test_lock.suites @ Test_integration.suites @ Test_queue.suites @ Test_accounts.suites @ Test_btree.suites @ Test_replica.suites @ Test_io.suites @ Test_net.suites @ Test_accent.suites @ Test_name_rpc.suites @ Test_server_lib.suites @ Test_recovery_unit.suites @ Test_tm.suites @ Test_directory.suites @ Test_distributed_prop.suites @ Test_profile.suites
   @ Test_obs.suites @ Test_lossy_commit.suites @ Test_determinism.suites
   @ Test_paxos.suites
   @ Test_group_commit.suites
   @ Test_checkpoint.suites @ Test_parallel_recovery.suites
   @ Test_instant_restart.suites
   @ Test_comm_batch.suites
   @ Test_scaleout.suites @ Test_bench_shapes.suites)
