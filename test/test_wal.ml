(* Tests for transaction identifiers, object identifiers, the record
   codec, and the log manager. *)

open Tabs_sim
open Tabs_storage
open Tabs_wal

let quick name f = Alcotest.test_case name `Quick f

let in_fiber f =
  let e = Engine.create () in
  let done_ = ref false in
  let _ = Engine.spawn e (fun () -> f e; done_ := true) in
  let _ = Engine.run e in
  if not !done_ then Alcotest.fail "fiber did not finish"

(* Tid ---------------------------------------------------------------- *)

let test_tid_family () =
  let top = Tid.top ~node:3 ~seq:17 in
  let child = Tid.child top ~index:0 in
  let grandchild = Tid.child child ~index:2 in
  Alcotest.(check bool) "top is top" true (Tid.is_top top);
  Alcotest.(check bool) "child is not" false (Tid.is_top child);
  Alcotest.(check bool) "parent of child" true
    (match Tid.parent child with Some p -> Tid.equal p top | None -> false);
  Alcotest.(check bool) "top_level strips" true
    (Tid.equal (Tid.top_level grandchild) top);
  Alcotest.(check bool) "ancestor" true
    (Tid.is_ancestor ~ancestor:top grandchild);
  Alcotest.(check bool) "self ancestor" true
    (Tid.is_ancestor ~ancestor:child child);
  Alcotest.(check bool) "not descendant" false
    (Tid.is_ancestor ~ancestor:grandchild child);
  Alcotest.(check string) "printing" "T3.17.0.2" (Tid.to_string grandchild)

let test_tid_sibling_not_ancestor () =
  let top = Tid.top ~node:1 ~seq:1 in
  let a = Tid.child top ~index:0 and b = Tid.child top ~index:1 in
  Alcotest.(check bool) "siblings unrelated" false (Tid.is_ancestor ~ancestor:a b)

(* Object_id ---------------------------------------------------------- *)

let test_object_pages () =
  let small = Object_id.make ~segment:1 ~offset:100 ~length:8 in
  Alcotest.(check int) "one page" 1 (List.length (Object_id.pages small));
  Alcotest.(check bool) "fits" true (Object_id.fits_one_page small);
  let spanning = Object_id.make ~segment:1 ~offset:510 ~length:8 in
  Alcotest.(check int) "two pages" 2 (List.length (Object_id.pages spanning));
  Alcotest.(check bool) "does not fit" false (Object_id.fits_one_page spanning);
  let exact = Object_id.make ~segment:1 ~offset:512 ~length:512 in
  (match Object_id.pages exact with
  | [ { Disk.segment = 1; page = 1 } ] -> ()
  | _ -> Alcotest.fail "expected exactly page 1");
  let empty = Object_id.make ~segment:1 ~offset:0 ~length:0 in
  Alcotest.(check int) "empty object" 0 (List.length (Object_id.pages empty))

(* Record codec ------------------------------------------------------- *)

let sample_records =
  let tid = Tid.top ~node:2 ~seq:5 in
  let sub = Tid.child tid ~index:1 in
  let obj = Object_id.make ~segment:4 ~offset:64 ~length:8 in
  [
    Record.Update_value
      { tid; obj; old_value = "old!"; new_value = "new!"; prev = Some 12 };
    Record.Update_operation
      {
        tid = sub;
        server = "queue";
        operation = "enqueue";
        undo_arg = "u";
        redo_arg = "r";
        pages = [ { Disk.segment = 4; page = 0 }; { Disk.segment = 4; page = 1 } ];
        prev = None;
      };
    Record.Txn_begin tid;
    Record.Txn_commit tid;
    Record.Txn_abort sub;
    Record.Txn_prepare (tid, 3);
    Record.Txn_end tid;
    Record.Checkpoint
      {
        dirty_pages = [ ({ Disk.segment = 4; page = 7 }, 99) ];
        active_txns = [ (tid, Some 98); (sub, None) ];
        prepared = [ (tid, 3) ];
      };
  ]

let test_record_roundtrip () =
  List.iter
    (fun r ->
      let decoded = Record.decode (Record.encode r) in
      if decoded <> r then
        Alcotest.failf "roundtrip failed for %s" (Format.asprintf "%a" Record.pp r))
    sample_records

let test_record_rejects_garbage () =
  (match Record.decode (Record.encode (Record.Txn_begin (Tid.top ~node:0 ~seq:0))) with
  | Record.Txn_begin _ -> ()
  | _ -> Alcotest.fail "decoded to wrong variant");
  Alcotest.(check bool) "garbage raises" true
    (try
       ignore (Record.decode "\255\255\255\255\255\255\255\255garbage");
       false
     with Codec.Reader.Malformed _ -> true)

let gen_tid =
  QCheck.Gen.(
    map3
      (fun node seq path -> { Tid.node; seq; path })
      (int_bound 100) (int_bound 10000)
      (list_size (int_bound 3) (int_bound 5)))

let gen_record =
  QCheck.Gen.(
    gen_tid >>= fun tid ->
    string_size (int_bound 40) >>= fun s1 ->
    string_size (int_bound 40) >>= fun s2 ->
    int_bound 1000 >>= fun n ->
    oneofl
      [
        Record.Update_value
          {
            tid;
            obj = Object_id.make ~segment:(n mod 7) ~offset:n ~length:8;
            old_value = s1;
            new_value = s2;
            prev = (if n mod 2 = 0 then Some n else None);
          };
        Record.Update_operation
          {
            tid;
            server = s1;
            operation = s2;
            undo_arg = s2;
            redo_arg = s1;
            pages = [ { Disk.segment = n mod 7; page = n mod 13 } ];
            prev = None;
          };
        Record.Txn_begin tid;
        Record.Txn_commit tid;
        Record.Txn_abort tid;
        Record.Txn_prepare (tid, n mod 5);
        Record.Txn_end tid;
        Record.Checkpoint
          {
            dirty_pages = [ ({ Disk.segment = 1; page = n mod 17 }, n) ];
            active_txns = [ (tid, Some n) ];
            prepared = [ (tid, n mod 7) ];
          };
      ])

let prop_decode_never_crashes =
  (* arbitrary bytes either decode to some record or raise Malformed —
     nothing else (no out-of-bounds, no assert failures) *)
  QCheck.Test.make ~name:"decode is total on garbage" ~count:500
    QCheck.(string_of_size (Gen.int_bound 120))
    (fun bytes ->
      match Record.decode bytes with
      | _ -> true
      | exception Codec.Reader.Malformed _ -> true)

let prop_record_roundtrip =
  QCheck.Test.make ~name:"record encode/decode roundtrip" ~count:500
    (QCheck.make gen_record)
    (fun r -> Record.decode (Record.encode r) = r)

(* Log manager -------------------------------------------------------- *)

let test_log_backward_chain () =
  in_fiber (fun e ->
      let log = Log_manager.attach e (Stable.create ()) in
      let tid = Tid.top ~node:1 ~seq:1 in
      let obj n = Object_id.make ~segment:1 ~offset:(8 * n) ~length:8 in
      let l0 = Log_manager.append_value log ~tid ~obj:(obj 0) ~old_value:"a" ~new_value:"b" in
      let l1 = Log_manager.append_value log ~tid ~obj:(obj 1) ~old_value:"c" ~new_value:"d" in
      let l2 = Log_manager.append_value log ~tid ~obj:(obj 2) ~old_value:"e" ~new_value:"f" in
      Alcotest.(check (option int)) "last lsn" (Some l2) (Log_manager.last_lsn_of log tid);
      (match Log_manager.read log l2 with
      | Record.Update_value u ->
          Alcotest.(check (option int)) "chain l2->l1" (Some l1) u.prev
      | _ -> Alcotest.fail "wrong record");
      match Log_manager.read log l1 with
      | Record.Update_value u ->
          Alcotest.(check (option int)) "chain l1->l0" (Some l0) u.prev;
          (match Log_manager.read log l0 with
          | Record.Update_value u0 ->
              Alcotest.(check (option int)) "chain l0->none" None u0.prev
          | _ -> Alcotest.fail "wrong record")
      | _ -> Alcotest.fail "wrong record")

let test_log_force_group_commit () =
  let e = Engine.create () in
  let log = Log_manager.attach e (Stable.create ()) in
  let _ =
    Engine.spawn e (fun () ->
        let tid = Tid.top ~node:1 ~seq:1 in
        let obj = Object_id.make ~segment:1 ~offset:0 ~length:8 in
        for _ = 1 to 5 do
          ignore
            (Log_manager.append_value log ~tid ~obj ~old_value:"12345678"
               ~new_value:"abcdefgh")
        done;
        Alcotest.(check int) "nothing stable yet" 0 (Log_manager.flushed_lsn log);
        Log_manager.force_all log;
        Alcotest.(check int) "all stable" 5 (Log_manager.flushed_lsn log);
        Alcotest.(check int) "one group force" 1 (Log_manager.force_count log);
        (* Forcing again is free. *)
        Log_manager.force_all log;
        Alcotest.(check int) "idempotent" 1 (Log_manager.force_count log))
  in
  let _ = Engine.run e in
  Alcotest.(check int) "exactly one stable write charged"
    1
    (Metrics.count (Engine.metrics e) Cost_model.Stable_storage_write)

let test_log_partial_force () =
  in_fiber (fun e ->
      let log = Log_manager.attach e (Stable.create ()) in
      let tid = Tid.top ~node:1 ~seq:1 in
      let obj = Object_id.make ~segment:1 ~offset:0 ~length:8 in
      let l0 = Log_manager.append_value log ~tid ~obj ~old_value:"x" ~new_value:"y" in
      let _l1 = Log_manager.append_value log ~tid ~obj ~old_value:"y" ~new_value:"z" in
      Log_manager.force log ~upto:l0;
      Alcotest.(check int) "only l0 stable" (l0 + 1) (Log_manager.flushed_lsn log);
      (* Unflushed records are still readable from the buffer. *)
      match Log_manager.read log (l0 + 1) with
      | Record.Update_value u -> Alcotest.(check string) "buffered" "z" u.new_value
      | _ -> Alcotest.fail "wrong record")

let test_log_survives_restart () =
  let stable = Stable.create () in
  in_fiber (fun e ->
      let log = Log_manager.attach e stable in
      let tid = Tid.top ~node:1 ~seq:1 in
      let obj = Object_id.make ~segment:1 ~offset:0 ~length:8 in
      ignore (Log_manager.append log (Record.Txn_begin tid));
      ignore (Log_manager.append_value log ~tid ~obj ~old_value:"a" ~new_value:"b");
      Log_manager.force_all log;
      (* This one is lost in the crash: *)
      ignore (Log_manager.append_value log ~tid ~obj ~old_value:"b" ~new_value:"c"));
  in_fiber (fun e ->
      let log = Log_manager.attach e stable in
      Alcotest.(check int) "two records survive" 2 (Log_manager.next_lsn log);
      let seen = ref [] in
      Log_manager.iter_forward log ~from:0 ~f:(fun lsn r -> seen := (lsn, r) :: !seen);
      Alcotest.(check int) "forward scan sees both" 2 (List.length !seen))

let test_log_checkpoint_scan () =
  in_fiber (fun e ->
      let log = Log_manager.attach e (Stable.create ()) in
      let tid = Tid.top ~node:1 ~seq:1 in
      Alcotest.(check (option int)) "no checkpoint yet" None (Log_manager.last_checkpoint log);
      ignore (Log_manager.append log (Record.Txn_begin tid));
      let ck =
        Log_manager.append log
          (Record.Checkpoint
             { dirty_pages = []; active_txns = []; prepared = [] })
      in
      ignore (Log_manager.append log (Record.Txn_commit tid));
      Log_manager.force_all log;
      Alcotest.(check (option int)) "finds latest" (Some ck) (Log_manager.last_checkpoint log))

let test_log_truncate () =
  in_fiber (fun e ->
      let log = Log_manager.attach e (Stable.create ()) in
      let tid = Tid.top ~node:1 ~seq:1 in
      let obj = Object_id.make ~segment:1 ~offset:0 ~length:8 in
      for _ = 1 to 10 do
        ignore (Log_manager.append_value log ~tid ~obj ~old_value:"a" ~new_value:"b")
      done;
      Log_manager.force_all log;
      Log_manager.truncate log ~keep_from:6;
      Alcotest.(check int) "first lsn" 6 (Log_manager.first_lsn log);
      let seen = ref 0 in
      Log_manager.iter_backward log ~from:9 ~f:(fun _ _ -> incr seen; `Continue);
      Alcotest.(check int) "backward scan sees live only" 4 !seen)

let suites =
  [
    ( "wal.tid",
      [
        quick "family relations" test_tid_family;
        quick "siblings" test_tid_sibling_not_ancestor;
      ] );
    ("wal.object_id", [ quick "page spans" test_object_pages ]);
    ( "wal.record",
      [
        quick "roundtrip samples" test_record_roundtrip;
        quick "rejects garbage" test_record_rejects_garbage;
        QCheck_alcotest.to_alcotest prop_record_roundtrip;
        QCheck_alcotest.to_alcotest prop_decode_never_crashes;
      ] );
    ( "wal.log",
      [
        quick "backward chain" test_log_backward_chain;
        quick "group commit force" test_log_force_group_commit;
        quick "partial force" test_log_partial_force;
        quick "survives restart" test_log_survives_restart;
        quick "checkpoint scan" test_log_checkpoint_scan;
        quick "truncate" test_log_truncate;
      ] );
  ]
